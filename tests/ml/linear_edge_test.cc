/// Edge-case sweep for the linear family: degenerate designs, constant
/// targets, and scale invariance — failure modes the federated loop must
/// survive because clients control their own data.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/linear/elastic_net.h"
#include "ml/linear/huber.h"
#include "ml/linear/lasso.h"
#include "ml/linear/linear_svr.h"
#include "ml/linear/quantile.h"
#include "ml/metrics.h"

namespace fedfc::ml {
namespace {

TEST(LinearEdgeTest, ConstantTargetFitsWithoutBlowup) {
  Rng rng(1);
  Matrix x(60, 3);
  for (double& v : x.data()) v = rng.Normal();
  std::vector<double> y(60, 7.5);
  LassoRegressor model;
  Rng fit_rng(2);
  ASSERT_TRUE(model.Fit(x, y, &fit_rng).ok());
  for (double p : model.Predict(x)) EXPECT_NEAR(p, 7.5, 0.1);
}

TEST(LinearEdgeTest, ConstantFeatureColumnIgnored) {
  Rng rng(3);
  Matrix x(80, 2);
  std::vector<double> y(80);
  for (size_t i = 0; i < 80; ++i) {
    x(i, 0) = 5.0;  // Constant column.
    x(i, 1) = rng.Uniform(-1, 1);
    y[i] = 3.0 * x(i, 1);
  }
  LassoRegressor::Config cfg;
  cfg.alpha = 1e-4;
  LassoRegressor model(cfg);
  Rng fit_rng(4);
  ASSERT_TRUE(model.Fit(x, y, &fit_rng).ok());
  EXPECT_LT(MeanSquaredError(y, model.Predict(x)), 0.01);
}

TEST(LinearEdgeTest, SingleFeatureProblem) {
  Rng rng(5);
  Matrix x(50, 1);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(0, 10);
    y[i] = 2.0 * x(i, 0) + 1.0;
  }
  HuberRegressor model;
  Rng fit_rng(6);
  ASSERT_TRUE(model.Fit(x, y, &fit_rng).ok());
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model.intercept(), 1.0, 0.3);
}

TEST(LinearEdgeTest, PredictionsScaleEquivariant) {
  // Scaling the target by 1000 should scale predictions by ~1000 (the
  // internal standardization must round-trip).
  Rng rng(7);
  Matrix x(100, 2);
  std::vector<double> y(100), y_big(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    y[i] = x(i, 0) - 0.5 * x(i, 1);
    y_big[i] = 1000.0 * y[i];
  }
  ElasticNetCvRegressor small, big;
  Rng r1(8), r2(8);
  ASSERT_TRUE(small.Fit(x, y, &r1).ok());
  ASSERT_TRUE(big.Fit(x, y_big, &r2).ok());
  std::vector<double> ps = small.Predict(x);
  std::vector<double> pb = big.Predict(x);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(pb[i], 1000.0 * ps[i], 30.0) << i;
  }
}

TEST(LinearEdgeTest, RejectsShapeMismatches) {
  Matrix x(10, 2, 1.0);
  std::vector<double> wrong_y(5, 0.0);
  Rng rng(9);
  LassoRegressor lasso;
  EXPECT_FALSE(lasso.Fit(x, wrong_y, &rng).ok());
  LinearSvrRegressor svr;
  EXPECT_FALSE(svr.Fit(Matrix(), {}, &rng).ok());
}

TEST(LinearEdgeTest, SetParametersRejectsEmpty) {
  QuantileRegressor model;
  EXPECT_FALSE(model.SetParameters({}).ok());
}

TEST(LinearEdgeTest, TinySampleCountsStillFit) {
  // 10 rows, 3 features: every family must return something finite.
  Rng rng(10);
  Matrix x(10, 3);
  std::vector<double> y(10);
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.Normal();
    y[i] = x(i, 0) + rng.Normal(0, 0.1);
  }
  std::vector<std::unique_ptr<Regressor>> models;
  models.push_back(std::make_unique<LassoRegressor>());
  models.push_back(std::make_unique<LinearSvrRegressor>());
  models.push_back(std::make_unique<HuberRegressor>());
  models.push_back(std::make_unique<QuantileRegressor>());
  for (auto& model : models) {
    Rng fit_rng(11);
    ASSERT_TRUE(model->Fit(x, y, &fit_rng).ok()) << model->Name();
    for (double p : model->Predict(x)) {
      EXPECT_TRUE(std::isfinite(p)) << model->Name();
    }
  }
}

}  // namespace
}  // namespace fedfc::ml
