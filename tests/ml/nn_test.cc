#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/metrics.h"
#include "ml/nn/adam.h"
#include "ml/nn/dense.h"
#include "ml/nn/mlp.h"
#include "ml/nn/nbeats.h"

namespace fedfc::ml {
namespace {

TEST(DenseLayerTest, ForwardComputesAffineMap) {
  nn::DenseLayer layer(2, 1, nn::Activation::kIdentity);
  std::vector<double> params = {2.0, 3.0, 0.5};  // w = [2, 3], b = 0.5.
  layer.LoadParameters(params, 0);
  Matrix x({{1.0, 1.0}});
  Matrix out = layer.Forward(x);
  EXPECT_DOUBLE_EQ(out(0, 0), 5.5);
  Matrix out2 = layer.ForwardInference(x);
  EXPECT_DOUBLE_EQ(out2(0, 0), 5.5);
}

TEST(DenseLayerTest, ReluClampsNegativePreActivations) {
  nn::DenseLayer layer(1, 1, nn::Activation::kRelu);
  layer.LoadParameters({1.0, 0.0}, 0);
  Matrix neg({{-2.0}});
  EXPECT_DOUBLE_EQ(layer.Forward(neg)(0, 0), 0.0);
  Matrix pos({{2.0}});
  EXPECT_DOUBLE_EQ(layer.Forward(pos)(0, 0), 2.0);
}

TEST(DenseLayerTest, BackwardMatchesNumericalGradient) {
  Rng rng(1);
  nn::DenseLayer layer(3, 2, nn::Activation::kRelu);
  layer.Init(&rng);
  Matrix x({{0.5, -0.3, 0.8}});

  // Analytic gradient of L = sum(out) wrt input.
  layer.ZeroGrads();
  Matrix out = layer.Forward(x);
  Matrix ones(1, 2, 1.0);
  Matrix grad_in = layer.Backward(ones);

  // Numerical check.
  const double eps = 1e-6;
  for (size_t j = 0; j < 3; ++j) {
    Matrix xp = x, xm = x;
    xp(0, j) += eps;
    xm(0, j) -= eps;
    double lp = 0.0, lm = 0.0;
    Matrix op = layer.ForwardInference(xp);
    Matrix om = layer.ForwardInference(xm);
    for (size_t c = 0; c < 2; ++c) {
      lp += op(0, c);
      lm += om(0, c);
    }
    EXPECT_NEAR(grad_in(0, j), (lp - lm) / (2 * eps), 1e-5);
  }
}

TEST(DenseLayerTest, ParameterRoundTrip) {
  Rng rng(2);
  nn::DenseLayer layer(4, 3, nn::Activation::kIdentity);
  layer.Init(&rng);
  std::vector<double> params;
  layer.AppendParameters(&params);
  EXPECT_EQ(params.size(), 4u * 3u + 3u);
  nn::DenseLayer clone(4, 3, nn::Activation::kIdentity);
  EXPECT_EQ(clone.LoadParameters(params, 0), params.size());
  Matrix x({{1, 2, 3, 4}});
  Matrix a = layer.ForwardInference(x);
  Matrix b = clone.ForwardInference(x);
  for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(a(0, c), b(0, c));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with Adam.
  double w = 0.0, g = 0.0;
  nn::AdamOptimizer::Config cfg;
  cfg.learning_rate = 0.1;
  nn::AdamOptimizer adam(cfg);
  std::vector<nn::ParamSpan> spans = {{&w, &g, 1}};
  for (int iter = 0; iter < 500; ++iter) {
    g = 2.0 * (w - 3.0);
    adam.Step(spans);
  }
  EXPECT_NEAR(w, 3.0, 0.01);
  EXPECT_EQ(adam.step_count(), 500u);
}

TEST(AdamTest, ResetClearsState) {
  double w = 0.0, g = 1.0;
  nn::AdamOptimizer adam;
  std::vector<nn::ParamSpan> spans = {{&w, &g, 1}};
  adam.Step(spans);
  adam.Reset();
  EXPECT_EQ(adam.step_count(), 0u);
}

TEST(MlpClassifierTest, LearnsXor) {
  // XOR: not linearly separable, requires the hidden layer.
  Matrix x({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  std::vector<int> y = {0, 1, 1, 0};
  // Replicate to give SGD enough batches.
  Matrix xr(400, 2);
  std::vector<int> yr(400);
  for (size_t i = 0; i < 400; ++i) {
    xr(i, 0) = x(i % 4, 0);
    xr(i, 1) = x(i % 4, 1);
    yr[i] = y[i % 4];
  }
  MlpClassifier::Config cfg;
  cfg.hidden = {16};
  cfg.epochs = 60;
  cfg.learning_rate = 5e-3;
  MlpClassifier model(cfg);
  Rng rng(3);
  ASSERT_TRUE(model.Fit(xr, yr, 2, &rng).ok());
  EXPECT_GT(Accuracy(yr, model.Predict(xr)), 0.95);
}

TEST(MlpClassifierTest, ProbabilitiesNormalized) {
  Rng rng(4);
  Matrix x(100, 3);
  std::vector<int> y(100);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.Normal();
    y[i] = static_cast<int>(i % 3);
  }
  MlpClassifier::Config cfg;
  cfg.epochs = 5;
  MlpClassifier model(cfg);
  ASSERT_TRUE(model.Fit(x, y, 3, &rng).ok());
  Matrix proba = model.PredictProba(x);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(proba(i, 0) + proba(i, 1) + proba(i, 2), 1.0, 1e-9);
  }
}

TEST(MakeLagWindowsTest, ShapesAndContent) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  Matrix x;
  std::vector<double> y;
  ASSERT_TRUE(MakeLagWindows(v, 2, &x, &y));
  EXPECT_EQ(x.rows(), 3u);
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_DOUBLE_EQ(x(0, 0), 1);
  EXPECT_DOUBLE_EQ(x(0, 1), 2);
  EXPECT_DOUBLE_EQ(y[0], 3);
  EXPECT_DOUBLE_EQ(y[2], 5);
}

TEST(MakeLagWindowsTest, RejectsTooShort) {
  Matrix x;
  std::vector<double> y;
  EXPECT_FALSE(MakeLagWindows({1, 2}, 2, &x, &y));
  EXPECT_FALSE(MakeLagWindows({1, 2, 3}, 0, &x, &y));
}

ml::NBeatsConfig TinyNBeats() {
  ml::NBeatsConfig cfg;
  cfg.n_generic_blocks = 1;
  cfg.n_trend_blocks = 1;
  cfg.n_seasonal_blocks = 1;
  cfg.generic_width = 16;
  cfg.trend_width = 16;
  cfg.seasonal_width = 16;
  cfg.n_trunk_layers = 2;
  cfg.epochs = 40;
  cfg.batch_size = 64;
  cfg.learning_rate = 5e-3;
  return cfg;
}

TEST(NBeatsTest, LearnsSineOneStepAhead) {
  std::vector<double> v(400);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 16.0);
  }
  Matrix x;
  std::vector<double> y;
  ASSERT_TRUE(MakeLagWindows(v, 16, &x, &y));
  NBeatsRegressor model(TinyNBeats());
  Rng rng(5);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  double mse = MeanSquaredError(y, model.Predict(x));
  // Naive "repeat last value" on a period-16 sine has MSE ~ 0.076.
  EXPECT_LT(mse, 0.05);
}

TEST(NBeatsTest, ParameterRoundTripPreservesPredictions) {
  std::vector<double> v(200);
  Rng data_rng(6);
  for (double& x : v) x = data_rng.Normal();
  Matrix x;
  std::vector<double> y;
  ASSERT_TRUE(MakeLagWindows(v, 8, &x, &y));
  ml::NBeatsConfig cfg = TinyNBeats();
  cfg.epochs = 3;
  NBeatsRegressor model(cfg);
  Rng rng(7);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  std::vector<double> params = model.GetParameters();
  EXPECT_EQ(params.size(), model.n_params() + 2);  // + scaler state.

  NBeatsRegressor clone(cfg);
  Rng rng2(8);
  ASSERT_TRUE(clone.Build(8, &rng2).ok());
  ASSERT_TRUE(clone.SetParameters(params).ok());
  std::vector<double> a = model.Predict(x);
  std::vector<double> b = clone.Predict(x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(NBeatsTest, SetParametersRejectsWrongSize) {
  NBeatsRegressor model(TinyNBeats());
  Rng rng(9);
  ASSERT_TRUE(model.Build(8, &rng).ok());
  EXPECT_FALSE(model.SetParameters({1.0, 2.0}).ok());
  NBeatsRegressor unbuilt(TinyNBeats());
  EXPECT_FALSE(unbuilt.SetParameters({1.0}).ok());
}

TEST(NBeatsTest, SupportsParameterAveraging) {
  NBeatsRegressor model;
  EXPECT_TRUE(model.SupportsParameterAveraging());
}

TEST(NBeatsTest, RejectsMultiStepHorizonThroughRegressorApi) {
  ml::NBeatsConfig cfg = TinyNBeats();
  cfg.horizon = 3;
  NBeatsRegressor model(cfg);
  Matrix x(20, 8, 0.5);
  std::vector<double> y(20, 0.5);
  Rng rng(10);
  EXPECT_FALSE(model.Fit(x, y, &rng).ok());
}

}  // namespace
}  // namespace fedfc::ml
