#include "ml/scaler.h"

#include <gtest/gtest.h>

#include "core/vec_math.h"

namespace fedfc::ml {
namespace {

TEST(StandardScalerTest, TransformsToZeroMeanUnitVar) {
  Matrix x({{1, 10}, {2, 20}, {3, 30}});
  StandardScaler scaler;
  Matrix xs = scaler.FitTransform(x);
  for (size_t c = 0; c < 2; ++c) {
    std::vector<double> col = xs.Column(c);
    EXPECT_NEAR(Mean(col), 0.0, 1e-12);
    EXPECT_NEAR(StdDev(col), 1.0, 1e-12);
  }
}

TEST(StandardScalerTest, ConstantColumnGetsUnitScale) {
  Matrix x({{5, 1}, {5, 2}, {5, 3}});
  StandardScaler scaler;
  Matrix xs = scaler.FitTransform(x);
  for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(xs(r, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.scales()[0], 1.0);
}

TEST(StandardScalerTest, TransformUsesStoredStats) {
  Matrix train({{0.0}, {10.0}});
  StandardScaler scaler;
  scaler.Fit(train);
  Matrix test({{5.0}});
  Matrix out = scaler.Transform(test);
  EXPECT_NEAR(out(0, 0), 0.0, 1e-12);  // 5 is the train mean.
}

TEST(TargetScalerTest, RoundTrip) {
  std::vector<double> y = {10, 20, 30, 40};
  TargetScaler scaler;
  scaler.Fit(y);
  std::vector<double> ys = scaler.Transform(y);
  EXPECT_NEAR(Mean(ys), 0.0, 1e-12);
  std::vector<double> back = scaler.InverseTransform(ys);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(back[i], y[i], 1e-10);
}

TEST(TargetScalerTest, ConstantTargetSafe) {
  TargetScaler scaler;
  scaler.Fit({7, 7, 7});
  EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);
  std::vector<double> t = scaler.Transform({7});
  EXPECT_DOUBLE_EQ(t[0], 0.0);
}

TEST(TargetScalerTest, RestoreSetsState) {
  TargetScaler scaler;
  scaler.Restore(3.0, 2.0);
  EXPECT_DOUBLE_EQ(scaler.mean(), 3.0);
  EXPECT_DOUBLE_EQ(scaler.scale(), 2.0);
  EXPECT_DOUBLE_EQ(scaler.Transform({7.0})[0], 2.0);
}

}  // namespace
}  // namespace fedfc::ml
