#include "ml/metrics.h"
#include <cmath>

#include <gtest/gtest.h>

namespace fedfc::ml {
namespace {

TEST(RegressionMetricsTest, KnownValues) {
  std::vector<double> y = {1, 2, 3};
  std::vector<double> p = {1, 2, 6};
  EXPECT_DOUBLE_EQ(MeanSquaredError(y, p), 3.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(y, p), std::sqrt(3.0));
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(y, p), 1.0);
}

TEST(RegressionMetricsTest, PerfectPrediction) {
  std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(MeanSquaredError(y, y), 0.0);
  EXPECT_DOUBLE_EQ(R2Score(y, y), 1.0);
}

TEST(RegressionMetricsTest, R2OfMeanPredictorIsZero) {
  std::vector<double> y = {1, 2, 3};
  std::vector<double> mean_pred = {2, 2, 2};
  EXPECT_DOUBLE_EQ(R2Score(y, mean_pred), 0.0);
  // Constant target: defined as 0.
  EXPECT_DOUBLE_EQ(R2Score({5, 5, 5}, {1, 2, 3}), 0.0);
}

TEST(ClassificationMetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2, 1}, {0, 1, 1, 1}), 0.75);
}

TEST(ClassificationMetricsTest, MacroF1PerfectAndWorst) {
  std::vector<int> y = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(MacroF1(y, y, 3), 1.0);
  std::vector<int> wrong = {1, 1, 2, 2, 0, 0};
  EXPECT_DOUBLE_EQ(MacroF1(y, wrong, 3), 0.0);
}

TEST(ClassificationMetricsTest, MacroF1KnownValue) {
  // Class 0: tp=1, fn=1, fp=0 -> F1 = 2/3. Class 1: tp=1, fn=0, fp=1 -> 2/3.
  std::vector<int> y = {0, 0, 1};
  std::vector<int> p = {0, 1, 1};
  EXPECT_NEAR(MacroF1(y, p, 2), 2.0 / 3.0, 1e-12);
}

TEST(ClassificationMetricsTest, MacroF1SkipsUnobservedClasses) {
  // Classes 2..5 never appear; they must not dilute the average.
  std::vector<int> y = {0, 1, 0, 1};
  std::vector<int> p = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(MacroF1(y, p, 6), 1.0);
}

TEST(MrrTest, TopRankGivesOne) {
  Matrix proba({{0.7, 0.2, 0.1}});
  EXPECT_DOUBLE_EQ(MeanReciprocalRankAtK({0}, proba, 3), 1.0);
}

TEST(MrrTest, SecondRankGivesHalf) {
  Matrix proba({{0.7, 0.2, 0.1}});
  EXPECT_DOUBLE_EQ(MeanReciprocalRankAtK({1}, proba, 3), 0.5);
}

TEST(MrrTest, OutsideTopKGivesZero) {
  Matrix proba({{0.7, 0.2, 0.1}});
  EXPECT_DOUBLE_EQ(MeanReciprocalRankAtK({2}, proba, 2), 0.0);
}

TEST(MrrTest, AveragesOverSamples) {
  Matrix proba({{0.7, 0.3}, {0.3, 0.7}});
  // First sample true=0 (rank 1), second true=0 (rank 2).
  EXPECT_DOUBLE_EQ(MeanReciprocalRankAtK({0, 0}, proba, 2), 0.75);
}

TEST(WilcoxonTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  WilcoxonResult r = WilcoxonSignedRank(a, a);
  EXPECT_EQ(r.n_effective, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WilcoxonTest, ConsistentDominanceIsSignificant) {
  // a always smaller by a varying margin across 12 datasets (paper scale).
  std::vector<double> a, b;
  for (int i = 1; i <= 12; ++i) {
    a.push_back(i);
    b.push_back(i + 0.5 + 0.1 * i);
  }
  WilcoxonResult r = WilcoxonSignedRank(a, b);
  EXPECT_EQ(r.n_effective, 12u);
  EXPECT_LT(r.p_value, 0.05);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);  // All differences negative.
}

TEST(WilcoxonTest, MixedDifferencesNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> b = {2, 1, 4, 3, 6, 5, 8, 7};
  WilcoxonResult r = WilcoxonSignedRank(a, b);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(AverageRanksTest, CleanOrdering) {
  // Method 0 best on both datasets, method 2 worst.
  std::vector<std::vector<double>> scores = {
      {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  std::vector<double> ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(AverageRanksTest, TiesShareAverageRank) {
  std::vector<std::vector<double>> scores = {{1.0}, {1.0}, {3.0}};
  std::vector<double> ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(AverageRanksTest, MixedWinners) {
  std::vector<std::vector<double>> scores = {{1.0, 3.0}, {3.0, 1.0}};
  std::vector<double> ranks = AverageRanks(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
}

}  // namespace
}  // namespace fedfc::ml
