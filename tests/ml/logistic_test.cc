#include "ml/linear/logistic.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/metrics.h"

namespace fedfc::ml {
namespace {

struct Blobs {
  Matrix x;
  std::vector<int> y;
};

Blobs MakeBlobs(size_t n_per_class, int n_classes, uint64_t seed) {
  Rng rng(seed);
  Blobs p;
  const size_t num_classes = static_cast<size_t>(n_classes);
  p.x = Matrix(n_per_class * num_classes, 2);
  p.y.resize(n_per_class * num_classes);
  for (int c = 0; c < n_classes; ++c) {
    double cx = 4.0 * c;
    for (size_t i = 0; i < n_per_class; ++i) {
      size_t row = static_cast<size_t>(c) * n_per_class + i;
      p.x(row, 0) = cx + rng.Normal(0.0, 0.5);
      p.x(row, 1) = rng.Normal(0.0, 0.5);
      p.y[row] = c;
    }
  }
  return p;
}

TEST(LogisticTest, SeparatesTwoBlobs) {
  Blobs p = MakeBlobs(100, 2, 1);
  LogisticRegressionClassifier model;
  Rng rng(2);
  ASSERT_TRUE(model.Fit(p.x, p.y, 2, &rng).ok());
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.98);
}

TEST(LogisticTest, MultinomialThreeBlobs) {
  Blobs p = MakeBlobs(100, 3, 3);
  LogisticRegressionClassifier model;
  Rng rng(4);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.95);
  EXPECT_EQ(model.n_classes(), 3);
}

TEST(LogisticTest, ProbabilitiesNormalizedAndConfident) {
  Blobs p = MakeBlobs(50, 2, 5);
  LogisticRegressionClassifier model;
  Rng rng(6);
  ASSERT_TRUE(model.Fit(p.x, p.y, 2, &rng).ok());
  Matrix proba = model.PredictProba(p.x);
  for (size_t i = 0; i < proba.rows(); ++i) {
    EXPECT_NEAR(proba(i, 0) + proba(i, 1), 1.0, 1e-9);
  }
  // The center of class 0 should be classified with high confidence.
  Matrix center({{0.0, 0.0}});
  Matrix cp = model.PredictProba(center);
  EXPECT_GT(cp(0, 0), 0.9);
}

TEST(LogisticTest, StrongL2ShrinksConfidence) {
  Blobs p = MakeBlobs(50, 2, 7);
  LogisticRegressionClassifier::Config weak_cfg;
  weak_cfg.l2 = 1e-5;
  LogisticRegressionClassifier::Config strong_cfg;
  strong_cfg.l2 = 10.0;
  LogisticRegressionClassifier weak(weak_cfg), strong(strong_cfg);
  Rng r1(8), r2(9);
  ASSERT_TRUE(weak.Fit(p.x, p.y, 2, &r1).ok());
  ASSERT_TRUE(strong.Fit(p.x, p.y, 2, &r2).ok());
  Matrix point({{0.0, 0.0}});
  double weak_conf = weak.PredictProba(point)(0, 0);
  double strong_conf = strong.PredictProba(point)(0, 0);
  EXPECT_GT(weak_conf, strong_conf);
}

TEST(LogisticTest, RejectsBadInputs) {
  LogisticRegressionClassifier model;
  Rng rng(10);
  EXPECT_FALSE(model.Fit(Matrix(), {}, 2, &rng).ok());
  Blobs p = MakeBlobs(10, 2, 11);
  EXPECT_FALSE(model.Fit(p.x, p.y, 1, &rng).ok());
}

TEST(LogisticTest, CloneReproducesPredictions) {
  Blobs p = MakeBlobs(50, 3, 12);
  LogisticRegressionClassifier model;
  Rng rng(13);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  auto clone = model.Clone();
  std::vector<int> a = model.Predict(p.x);
  std::vector<int> b = clone->Predict(p.x);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fedfc::ml
