#include "ml/tree/gbdt.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/metrics.h"
#include "ml/tree/gbdt_tree.h"
#include "ml/tree/hist_gbdt.h"
#include "ml/tree/oblivious_gbdt.h"

namespace fedfc::ml {
namespace {

struct Nonlinear {
  Matrix x;
  std::vector<double> y;
};

Nonlinear MakeNonlinear(size_t n, uint64_t seed) {
  Rng rng(seed);
  Nonlinear p;
  p.x = Matrix(n, 3);
  p.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < 3; ++j) p.x(i, j) = rng.Uniform(-2, 2);
    p.y[i] = std::sin(p.x(i, 0)) + (p.x(i, 1) > 0 ? 1.0 : -1.0) +
             0.1 * rng.Normal();
  }
  return p;
}

struct MultiClass {
  Matrix x;
  std::vector<int> y;
};

MultiClass MakeThreeClass(size_t n, uint64_t seed) {
  Rng rng(seed);
  MultiClass p;
  p.x = Matrix(n, 2);
  p.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.Uniform(-3, 3);
    p.x(i, 1) = rng.Uniform(-3, 3);
    if (p.x(i, 0) < -1) {
      p.y[i] = 0;
    } else if (p.x(i, 0) < 1) {
      p.y[i] = 1;
    } else {
      p.y[i] = 2;
    }
  }
  return p;
}

TEST(GbdtTreeTest, SquaredLossLeafIsShrunkMean) {
  // One leaf: weight = -sum(g)/(sum(h)+lambda); with g = -y, h = 1.
  Matrix x({{1}, {1}, {1}});
  std::vector<double> g = {-2, -4, -6};
  std::vector<double> h = {1, 1, 1};
  gbdt_internal::GbdtTreeConfig cfg;
  cfg.max_depth = 0;
  cfg.reg_lambda = 1.0;
  gbdt_internal::GbdtTree tree;
  tree.Fit(x, g, h, {}, cfg);
  EXPECT_EQ(tree.n_nodes(), 1u);
  EXPECT_NEAR(tree.PredictRow(x.Row(0)), 12.0 / 4.0, 1e-12);
}

TEST(GbdtTreeTest, SplitsOnInformativeFeature) {
  Rng rng(1);
  Matrix x(100, 2);
  std::vector<double> g(100), h(100, 1.0);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    g[i] = x(i, 0) > 0 ? -1.0 : 1.0;
  }
  gbdt_internal::GbdtTreeConfig cfg;
  cfg.max_depth = 2;
  gbdt_internal::GbdtTree tree;
  tree.Fit(x, g, h, {}, cfg);
  EXPECT_GT(tree.feature_gains()[0], tree.feature_gains()[1]);
}

TEST(GbdtTreeTest, SerializationRoundTrip) {
  Rng rng(2);
  Matrix x(50, 2);
  std::vector<double> g(50), h(50, 1.0);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    g[i] = rng.Normal();
  }
  gbdt_internal::GbdtTree tree;
  tree.Fit(x, g, h, {}, gbdt_internal::GbdtTreeConfig{});
  std::vector<double> blob;
  tree.AppendTo(&blob);
  size_t offset = 0;
  Result<gbdt_internal::GbdtTree> back =
      gbdt_internal::GbdtTree::FromSpan(blob, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(offset, blob.size());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(back->PredictRow(x.Row(i)), tree.PredictRow(x.Row(i)));
  }
}

TEST(GbdtTreeTest, FromSpanRejectsCorruptBlobs) {
  size_t offset = 0;
  EXPECT_FALSE(gbdt_internal::GbdtTree::FromSpan({}, &offset).ok());
  offset = 0;
  EXPECT_FALSE(gbdt_internal::GbdtTree::FromSpan({5.0, 1.0}, &offset).ok());
}

TEST(GbdtRegressorTest, FitsNonlinearSignal) {
  Nonlinear p = MakeNonlinear(500, 3);
  GbdtConfig cfg;
  cfg.n_estimators = 40;
  cfg.learning_rate = 0.2;
  GbdtRegressor model(cfg);
  Rng rng(4);
  ASSERT_TRUE(model.Fit(p.x, p.y, &rng).ok());
  EXPECT_LT(MeanSquaredError(p.y, model.Predict(p.x)), 0.1);
}

TEST(GbdtRegressorTest, MoreRoundsFitBetterInSample) {
  Nonlinear p = MakeNonlinear(300, 5);
  auto mse_with = [&](size_t rounds) {
    GbdtConfig cfg;
    cfg.n_estimators = rounds;
    GbdtRegressor model(cfg);
    Rng rng(6);
    EXPECT_TRUE(model.Fit(p.x, p.y, &rng).ok());
    return MeanSquaredError(p.y, model.Predict(p.x));
  };
  EXPECT_LT(mse_with(30), mse_with(3));
}

TEST(GbdtRegressorTest, SubsampleStillLearns) {
  Nonlinear p = MakeNonlinear(500, 7);
  GbdtConfig cfg;
  cfg.n_estimators = 40;
  cfg.subsample = 0.5;
  GbdtRegressor model(cfg);
  Rng rng(8);
  ASSERT_TRUE(model.Fit(p.x, p.y, &rng).ok());
  EXPECT_LT(MeanSquaredError(p.y, model.Predict(p.x)), 0.3);
}

TEST(GbdtRegressorTest, RejectsInvalidConfig) {
  Nonlinear p = MakeNonlinear(50, 9);
  Rng rng(10);
  GbdtConfig bad;
  bad.subsample = 0.0;
  GbdtRegressor m(bad);
  EXPECT_FALSE(m.Fit(p.x, p.y, &rng).ok());
  GbdtConfig bad2;
  bad2.n_estimators = 0;
  GbdtRegressor m2(bad2);
  EXPECT_FALSE(m2.Fit(p.x, p.y, &rng).ok());
}

TEST(GbdtRegressorTest, ModelSerializationRoundTrip) {
  Nonlinear p = MakeNonlinear(200, 11);
  GbdtConfig cfg;
  cfg.n_estimators = 10;
  GbdtRegressor model(cfg);
  Rng rng(12);
  ASSERT_TRUE(model.Fit(p.x, p.y, &rng).ok());
  std::vector<double> blob = model.SerializeModel();

  GbdtRegressor restored(cfg);
  ASSERT_TRUE(restored.DeserializeModel(blob).ok());
  std::vector<double> a = model.Predict(p.x);
  std::vector<double> b = restored.Predict(p.x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(GbdtRegressorTest, DeserializeRejectsGarbage) {
  GbdtRegressor model;
  EXPECT_FALSE(model.DeserializeModel({}).ok());
  EXPECT_FALSE(model.DeserializeModel({1.0, 0.1, 2.0, 1.0}).ok());
}

// Hostile-blob paths surfaced by the model_artifact fuzzer (the crashers
// live in tests/fuzz/regressions/model_artifact/).

TEST(GbdtRegressorTest, DeserializeRejectsZeroTrees) {
  // A zero-tree blob used to decode fine and then abort in Predict on the
  // !trees_.empty() check — a remote DoS through evaluate_model.
  GbdtRegressor model;
  EXPECT_FALSE(model.DeserializeModel({0.5, 0.1, 0.0}).ok());
}

TEST(GbdtTreeTest, FromSpanRejectsNonIntegralFields) {
  size_t offset = 0;
  // feature = 1e18 is finite but static_cast<int> of it is UB.
  EXPECT_FALSE(
      gbdt_internal::GbdtTree::FromSpan({1.0, 1e18, 0.5, -1.0, -1.0, 0.0},
                                        &offset)
          .ok());
  offset = 0;
  // NaN child index.
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      gbdt_internal::GbdtTree::FromSpan({1.0, 0.0, 0.5, kNaN, -1.0, 0.0},
                                        &offset)
          .ok());
}

TEST(GbdtTreeTest, FromSpanRejectsCyclicChildren) {
  // A split whose children point at itself (or backwards) hung PredictRow
  // forever; children must be strictly after the parent in preorder.
  size_t offset = 0;
  EXPECT_FALSE(
      gbdt_internal::GbdtTree::FromSpan({1.0, 0.0, 0.5, 0.0, 0.0, 0.0},
                                        &offset)
          .ok());
  offset = 0;
  std::vector<double> backward = {
      3.0,                        // n_nodes
      0.0, 0.5, 1.0, 2.0, 0.0,    // root -> children 1, 2
      0.0, 0.5, 0.0, 2.0, 0.0,    // node 1 points back at the root
      -1.0, 0.0, -1.0, -1.0, 0.1  // leaf
  };
  EXPECT_FALSE(gbdt_internal::GbdtTree::FromSpan(backward, &offset).ok());
}

TEST(GbdtRegressorTest, ValidateFeatureWidthChecksTreeFeatures) {
  Nonlinear p = MakeNonlinear(100, 21);
  GbdtConfig cfg;
  cfg.n_estimators = 5;
  GbdtRegressor model(cfg);
  Rng rng(22);
  ASSERT_TRUE(model.Fit(p.x, p.y, &rng).ok());
  EXPECT_TRUE(model.ValidateFeatureWidth(p.x.cols()).ok());
  EXPECT_FALSE(model.ValidateFeatureWidth(0).ok());
}

TEST(GbdtClassifierTest, LearnsThreeClasses) {
  MultiClass p = MakeThreeClass(600, 13);
  GbdtConfig cfg;
  cfg.n_estimators = 20;
  cfg.learning_rate = 0.3;
  GbdtClassifier model(cfg);
  Rng rng(14);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.95);
}

TEST(GbdtClassifierTest, ProbabilitiesSumToOne) {
  MultiClass p = MakeThreeClass(200, 15);
  GbdtConfig cfg;
  cfg.n_estimators = 5;
  GbdtClassifier model(cfg);
  Rng rng(16);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  Matrix proba = model.PredictProba(p.x);
  for (size_t i = 0; i < proba.rows(); ++i) {
    double total = proba(i, 0) + proba(i, 1) + proba(i, 2);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(GbdtClassifierTest, FirstOrderVariantAlsoLearns) {
  MultiClass p = MakeThreeClass(600, 17);
  GbdtConfig cfg;
  cfg.n_estimators = 20;
  cfg.learning_rate = 0.3;
  cfg.use_hessian = false;  // Classic gradient boosting.
  GbdtClassifier model(cfg);
  EXPECT_EQ(model.Name(), "GradientBoostingClassifier");
  Rng rng(18);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.9);
}

TEST(HistGbdtTest, LearnsThreeClasses) {
  MultiClass p = MakeThreeClass(600, 19);
  HistGbdtClassifier::Config cfg;
  cfg.n_estimators = 20;
  cfg.learning_rate = 0.3;
  HistGbdtClassifier model(cfg);
  Rng rng(20);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.9);
}

TEST(HistGbdtTest, MaxLeavesBoundsComplexity) {
  MultiClass p = MakeThreeClass(300, 21);
  HistGbdtClassifier::Config cfg;
  cfg.n_estimators = 2;
  cfg.max_leaves = 2;  // Stumps only.
  HistGbdtClassifier model(cfg);
  Rng rng(22);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  // Still sums to one and is better than random.
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.5);
}

TEST(ObliviousGbdtTest, LearnsThreeClasses) {
  MultiClass p = MakeThreeClass(600, 23);
  ObliviousGbdtClassifier::Config cfg;
  cfg.n_estimators = 20;
  cfg.learning_rate = 0.3;
  ObliviousGbdtClassifier model(cfg);
  Rng rng(24);
  ASSERT_TRUE(model.Fit(p.x, p.y, 3, &rng).ok());
  EXPECT_GT(Accuracy(p.y, model.Predict(p.x)), 0.9);
}

TEST(ObliviousGbdtTest, RejectsBadInputs) {
  ObliviousGbdtClassifier model;
  Rng rng(25);
  EXPECT_FALSE(model.Fit(Matrix(), {}, 3, &rng).ok());
  MultiClass p = MakeThreeClass(50, 26);
  EXPECT_FALSE(model.Fit(p.x, p.y, 1, &rng).ok());
}

}  // namespace
}  // namespace fedfc::ml
