#include "ts/adf.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ts/series.h"

namespace fedfc::ts {
namespace {

std::vector<double> StationaryAr1(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = 0.5 * x + rng.Normal();
    v[t] = x;
  }
  return v;
}

std::vector<double> RandomWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x += rng.Normal();
    v[t] = x;
  }
  return v;
}

TEST(AdfTest, StationarySeriesRejectsUnitRoot) {
  Result<AdfResult> r = AdfTest(StationaryAr1(1000, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stationary());
  EXPECT_LT(r->statistic, r->critical_5pct);
}

TEST(AdfTest, RandomWalkFailsToReject) {
  Result<AdfResult> r = AdfTest(RandomWalk(1000, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->stationary());
}

TEST(AdfTest, CriticalValuesOrdered) {
  Result<AdfResult> r = AdfTest(StationaryAr1(500, 3));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->critical_1pct, r->critical_5pct);
  EXPECT_LT(r->critical_5pct, r->critical_10pct);
  // Near the asymptotic MacKinnon values.
  EXPECT_NEAR(r->critical_5pct, -2.86, 0.05);
}

TEST(AdfTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(AdfTest({1, 2, 3}).ok());               // Too short.
  EXPECT_FALSE(AdfTest(std::vector<double>(100, 5.0)).ok());  // Constant.
}

TEST(AdfTest, ExplicitLagOrder) {
  Result<AdfResult> r = AdfTest(StationaryAr1(500, 4), /*max_lag=*/3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->lags_used, 3u);
}

TEST(IsStationaryTest, FallbackUsedOnFailure) {
  EXPECT_TRUE(IsStationary({1, 2, 3}, /*fallback=*/true));
  EXPECT_FALSE(IsStationary({1, 2, 3}, /*fallback=*/false));
}

TEST(OrderOfIntegrationTest, StationaryIsZero) {
  EXPECT_EQ(OrderOfIntegration(StationaryAr1(800, 5)), 0);
}

TEST(OrderOfIntegrationTest, RandomWalkIsOne) {
  EXPECT_EQ(OrderOfIntegration(RandomWalk(800, 6)), 1);
}

TEST(OrderOfIntegrationTest, DoubleIntegratedIsTwo) {
  std::vector<double> walk = RandomWalk(800, 7);
  std::vector<double> twice(walk.size());
  double acc = 0.0;
  for (size_t t = 0; t < walk.size(); ++t) {
    acc += walk[t];
    twice[t] = acc;
  }
  EXPECT_EQ(OrderOfIntegration(twice), 2);
}

// Property sweep: the verdict should be robust across seeds.
class AdfSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdfSweepTest, StationaryVsWalkSeparated) {
  uint64_t seed = GetParam();
  Result<AdfResult> stat = AdfTest(StationaryAr1(1500, seed));
  Result<AdfResult> walk = AdfTest(RandomWalk(1500, seed + 1000));
  ASSERT_TRUE(stat.ok());
  ASSERT_TRUE(walk.ok());
  EXPECT_LT(stat->statistic, walk->statistic);
  EXPECT_TRUE(stat->stationary());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdfSweepTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace fedfc::ts
