#include "ts/series.h"

#include <gtest/gtest.h>

namespace fedfc::ts {
namespace {

Series MakeSeries(std::vector<double> values) {
  return Series(std::move(values), /*start_epoch=*/1262304000,
                /*interval_seconds=*/3600);
}

TEST(SeriesTest, BasicAccessors) {
  Series s = MakeSeries({1, 2, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_EQ(s.TimestampAt(0), 1262304000);
  EXPECT_EQ(s.TimestampAt(2), 1262304000 + 2 * 3600);
  EXPECT_DOUBLE_EQ(s.SamplesPerDay(), 24.0);
}

TEST(SeriesTest, MissingValueAccounting) {
  Series s = MakeSeries({1, MissingValue(), 3, MissingValue()});
  EXPECT_EQ(s.CountMissing(), 2u);
  EXPECT_DOUBLE_EQ(s.MissingFraction(), 0.5);
  std::vector<double> present = s.NonMissingValues();
  ASSERT_EQ(present.size(), 2u);
  EXPECT_DOUBLE_EQ(present[0], 1.0);
  EXPECT_DOUBLE_EQ(present[1], 3.0);
}

TEST(SeriesTest, SlicePreservesTimeAxis) {
  Series s = MakeSeries({0, 1, 2, 3, 4});
  Series sub = s.Slice(2, 4);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
  EXPECT_EQ(sub.start_epoch(), s.TimestampAt(2));
  EXPECT_EQ(sub.interval_seconds(), s.interval_seconds());
}

TEST(SeriesTest, TrainValidSplitIsTimeOrdered) {
  Series s = MakeSeries({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto split = s.TrainValidSplit(0.3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first.size(), 7u);
  EXPECT_EQ(split->second.size(), 3u);
  EXPECT_DOUBLE_EQ(split->second[0], 7.0);
}

TEST(SeriesTest, TrainValidSplitRejectsBadFraction) {
  Series s = MakeSeries({1, 2, 3});
  EXPECT_FALSE(s.TrainValidSplit(0.0).ok());
  EXPECT_FALSE(s.TrainValidSplit(1.0).ok());
}

TEST(DifferenceTest, FirstAndSecondOrder) {
  std::vector<double> v = {1, 4, 9, 16};
  std::vector<double> d1 = Difference(v, 1);
  ASSERT_EQ(d1.size(), 3u);
  EXPECT_DOUBLE_EQ(d1[0], 3);
  EXPECT_DOUBLE_EQ(d1[2], 7);
  std::vector<double> d2 = Difference(v, 2);
  ASSERT_EQ(d2.size(), 2u);
  EXPECT_DOUBLE_EQ(d2[0], 2);
  EXPECT_DOUBLE_EQ(d2[1], 2);
}

TEST(DifferenceTest, ZeroOrderIsIdentity) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_EQ(Difference(v, 0), v);
}

TEST(DifferenceTest, ShortInputGivesEmpty) {
  EXPECT_TRUE(Difference({1.0}, 1).empty());
  EXPECT_TRUE(Difference({}, 1).empty());
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  std::vector<double> v = {2, 4, 6, 8};
  auto [mean, sd] = StandardizeInPlace(&v);
  EXPECT_DOUBLE_EQ(mean, 5.0);
  EXPECT_GT(sd, 0.0);
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(StandardizeTest, MissingValuesPassThrough) {
  std::vector<double> v = {1, MissingValue(), 3};
  StandardizeInPlace(&v);
  EXPECT_TRUE(IsMissing(v[1]));
  EXPECT_FALSE(IsMissing(v[0]));
}

TEST(SplitIntoClientsTest, BalancedContiguousSplits) {
  Series s = MakeSeries({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto splits = SplitIntoClients(s, 3);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 3u);
  EXPECT_EQ((*splits)[0].size(), 4u);
  EXPECT_EQ((*splits)[1].size(), 3u);
  EXPECT_EQ((*splits)[2].size(), 3u);
  // Contiguity: client 1 starts where client 0 ends.
  EXPECT_DOUBLE_EQ((*splits)[1][0], 4.0);
  EXPECT_EQ((*splits)[1].start_epoch(), s.TimestampAt(4));
}

TEST(SplitIntoClientsTest, EnforcesMinInstances) {
  Series s = MakeSeries(std::vector<double>(100, 1.0));
  EXPECT_TRUE(SplitIntoClients(s, 5, 20).ok());
  EXPECT_FALSE(SplitIntoClients(s, 5, 21).ok());
  EXPECT_FALSE(SplitIntoClients(s, 0).ok());
}

}  // namespace
}  // namespace fedfc::ts
