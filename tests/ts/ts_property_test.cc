/// Cross-cutting property tests for the time-series substrate: invariances
/// that must hold for arbitrary well-formed inputs.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/vec_math.h"
#include "ts/acf.h"
#include "ts/adf.h"
#include "ts/fractal.h"
#include "ts/interpolation.h"
#include "ts/periodogram.h"
#include "ts/series.h"

namespace fedfc::ts {
namespace {

std::vector<double> RandomSignal(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double level = rng.Uniform(-50, 50);
  double period = rng.Uniform(8, 64);
  double amp = rng.Uniform(0.1, 5.0);
  for (size_t t = 0; t < n; ++t) {
    v[t] = level +
           amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / period) +
           rng.Normal(0.0, 0.5);
  }
  return v;
}

class TsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TsPropertyTest, AcfIsAffineInvariant) {
  std::vector<double> v = RandomSignal(400, GetParam());
  std::vector<double> shifted = v;
  for (double& x : shifted) x = 3.0 * x + 100.0;
  std::vector<double> a = Acf(v, 10);
  std::vector<double> b = Acf(shifted, 10);
  for (size_t lag = 0; lag <= 10; ++lag) {
    EXPECT_NEAR(a[lag], b[lag], 1e-9) << "lag " << lag;
  }
}

TEST_P(TsPropertyTest, AcfBoundedByOne) {
  std::vector<double> v = RandomSignal(300, GetParam() + 100);
  for (double rho : Acf(v, 30)) {
    EXPECT_LE(std::fabs(rho), 1.0 + 1e-9);
  }
}

TEST_P(TsPropertyTest, InterpolationIsIdempotent) {
  std::vector<double> v = RandomSignal(200, GetParam() + 200);
  Rng rng(GetParam());
  for (double& x : v) {
    if (rng.Bernoulli(0.2)) x = MissingValue();
  }
  std::vector<double> once = LinearInterpolate(v);
  std::vector<double> twice = LinearInterpolate(once);
  EXPECT_EQ(once, twice);
}

TEST_P(TsPropertyTest, InterpolationPreservesObservedValues) {
  std::vector<double> v = RandomSignal(200, GetParam() + 300);
  Rng rng(GetParam() + 1);
  std::vector<double> holey = v;
  for (double& x : holey) {
    if (rng.Bernoulli(0.3)) x = MissingValue();
  }
  std::vector<double> filled = LinearInterpolate(holey);
  for (size_t i = 0; i < v.size(); ++i) {
    if (!IsMissing(holey[i])) {
      EXPECT_DOUBLE_EQ(filled[i], holey[i]);
    }
  }
}

TEST_P(TsPropertyTest, DifferencingReducesLengthByOrder) {
  std::vector<double> v = RandomSignal(150, GetParam() + 400);
  for (int d = 0; d <= 3; ++d) {
    EXPECT_EQ(Difference(v, d).size(), v.size() - static_cast<size_t>(d));
  }
}

TEST_P(TsPropertyTest, FractalDimensionScaleInvariant) {
  std::vector<double> v = RandomSignal(600, GetParam() + 500);
  std::vector<double> scaled = v;
  for (double& x : scaled) x *= 42.0;
  EXPECT_NEAR(HiguchiFractalDimension(v), HiguchiFractalDimension(scaled), 1e-9);
}

TEST_P(TsPropertyTest, SeasonalityDetectionScaleInvariant) {
  std::vector<double> v = RandomSignal(512, GetParam() + 600);
  std::vector<double> scaled = v;
  for (double& x : scaled) x = 10.0 * x - 5.0;
  auto a = DetectSeasonalities(v, 3);
  auto b = DetectSeasonalities(scaled, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].period, b[i].period, 1e-9);
  }
}

TEST_P(TsPropertyTest, SplitClientsPartitionExactly) {
  std::vector<double> v = RandomSignal(333, GetParam() + 700);
  Series s(v, 0, 3600);
  for (int n_clients : {2, 3, 5, 7}) {
    auto splits = SplitIntoClients(s, n_clients);
    ASSERT_TRUE(splits.ok());
    size_t total = 0;
    size_t pos = 0;
    for (const Series& split : *splits) {
      for (size_t i = 0; i < split.size(); ++i) {
        EXPECT_DOUBLE_EQ(split[i], v[pos + i]);
      }
      pos += split.size();
      total += split.size();
    }
    EXPECT_EQ(total, v.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fedfc::ts
