#include "ts/fft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::ts {
namespace {

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(FftTest, DeltaFunctionHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  Fft(&data);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(1);
  std::vector<std::complex<double>> data(64);
  std::vector<std::complex<double>> original(64);
  for (size_t i = 0; i < 64; ++i) {
    data[i] = {rng.Normal(), rng.Normal()};
    original[i] = data[i];
  }
  Fft(&data);
  Fft(&data, /*inverse=*/true);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(data[i].real() / 64.0, original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / 64.0, original[i].imag(), 1e-10);
  }
}

TEST(FftTest, PureToneConcentratesAtBin) {
  const size_t n = 128;
  const size_t k = 5;
  std::vector<double> x(n);
  for (size_t t = 0; t < n; ++t) {
    x[t] = std::cos(2.0 * std::numbers::pi * static_cast<double>(k * t) /
                    static_cast<double>(n));
  }
  std::vector<std::complex<double>> spec = RealFft(x);
  // Energy at bins k and n-k; near-zero elsewhere.
  for (size_t b = 0; b < n; ++b) {
    double mag = std::abs(spec[b]);
    if (b == k || b == n - k) {
      EXPECT_NEAR(mag, n / 2.0, 1e-9) << "bin " << b;
    } else {
      EXPECT_LT(mag, 1e-9) << "bin " << b;
    }
  }
}

TEST(FftTest, RealFftZeroPadsToPowerOfTwo) {
  std::vector<double> x(100, 1.0);
  std::vector<std::complex<double>> spec = RealFft(x);
  EXPECT_EQ(spec.size(), 128u);
}

TEST(FftTest, ParsevalTheoremHolds) {
  Rng rng(2);
  const size_t n = 256;
  std::vector<double> x(n);
  double time_energy = 0.0;
  for (double& v : x) {
    v = rng.Normal();
    time_energy += v * v;
  }
  std::vector<std::complex<double>> spec = RealFft(x);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8);
}

// Linearity property across sizes.
class FftSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FftSizeTest, LinearityHolds) {
  size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> a(n), b(n), sum(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = {rng.Normal(), 0.0};
    b[i] = {rng.Normal(), 0.0};
    sum[i] = a[i] + b[i];
  }
  Fft(&a);
  Fft(&b);
  Fft(&sum);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sum[i].real(), a[i].real() + b[i].real(), 1e-9);
    EXPECT_NEAR(sum[i].imag(), a[i].imag() + b[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeTest,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

}  // namespace
}  // namespace fedfc::ts
