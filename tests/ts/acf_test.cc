#include "ts/acf.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::ts {
namespace {

std::vector<double> Ar1Series(double phi, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t t = 0; t < n; ++t) {
    x = phi * x + rng.Normal();
    v[t] = x;
  }
  return v;
}

TEST(AcfTest, LagZeroIsOne) {
  std::vector<double> v = Ar1Series(0.5, 500, 1);
  std::vector<double> acf = Acf(v, 10);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(AcfTest, WhiteNoiseHasSmallAutocorrelation) {
  std::vector<double> v = Ar1Series(0.0, 5000, 2);
  std::vector<double> acf = Acf(v, 10);
  for (size_t lag = 1; lag <= 10; ++lag) {
    EXPECT_LT(std::fabs(acf[lag]), 0.05) << "lag " << lag;
  }
}

TEST(AcfTest, Ar1AcfDecaysGeometrically) {
  double phi = 0.8;
  std::vector<double> v = Ar1Series(phi, 20000, 3);
  std::vector<double> acf = Acf(v, 5);
  for (size_t lag = 1; lag <= 5; ++lag) {
    EXPECT_NEAR(acf[lag], std::pow(phi, lag), 0.06) << "lag " << lag;
  }
}

TEST(AcfTest, ConstantSeriesIsZeroBeyondLagZero) {
  std::vector<double> v(100, 3.0);
  std::vector<double> acf = Acf(v, 5);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  for (size_t lag = 1; lag <= 5; ++lag) EXPECT_DOUBLE_EQ(acf[lag], 0.0);
}

TEST(AcfTest, EmptyInputHandled) {
  std::vector<double> acf = Acf({}, 3);
  EXPECT_EQ(acf.size(), 4u);
}

TEST(PacfTest, Ar1HasSingleSignificantLag) {
  std::vector<double> v = Ar1Series(0.7, 10000, 4);
  std::vector<double> pacf = Pacf(v, 10);
  EXPECT_NEAR(pacf[0], 0.7, 0.05);  // Lag 1 ~= phi.
  for (size_t lag = 2; lag <= 10; ++lag) {
    EXPECT_LT(std::fabs(pacf[lag - 1]), 0.05) << "lag " << lag;
  }
}

TEST(PacfTest, Ar2HasTwoSignificantLags) {
  // AR(2): x_t = 0.5 x_{t-1} + 0.3 x_{t-2} + e.
  Rng rng(5);
  std::vector<double> v(20000);
  double x1 = 0.0, x2 = 0.0;
  for (size_t t = 0; t < v.size(); ++t) {
    double x = 0.5 * x1 + 0.3 * x2 + rng.Normal();
    v[t] = x;
    x2 = x1;
    x1 = x;
  }
  std::vector<double> pacf = Pacf(v, 6);
  EXPECT_GT(std::fabs(pacf[0]), 0.3);
  EXPECT_NEAR(pacf[1], 0.3, 0.05);  // PACF at lag 2 ~= phi_2.
  for (size_t lag = 3; lag <= 6; ++lag) {
    EXPECT_LT(std::fabs(pacf[lag - 1]), 0.05);
  }
}

TEST(PacfTest, ValuesBoundedByOne) {
  std::vector<double> v = Ar1Series(0.95, 300, 6);
  for (double p : Pacf(v, 20)) {
    EXPECT_LE(std::fabs(p), 1.0);
  }
}

TEST(SignificantLagsTest, Ar1FindsLagOne) {
  std::vector<double> v = Ar1Series(0.7, 2000, 7);
  SignificantLags lags = FindSignificantPacfLags(v);
  ASSERT_FALSE(lags.lags.empty());
  EXPECT_EQ(lags.lags.front(), 1u);
}

TEST(SignificantLagsTest, WhiteNoiseFindsFewLags) {
  std::vector<double> v = Ar1Series(0.0, 2000, 8);
  SignificantLags lags = FindSignificantPacfLags(v);
  // 95% band: expect ~5% false positives over 40 lags => at most a few.
  EXPECT_LE(lags.lags.size(), 5u);
}

TEST(SignificantLagsTest, InsignificantBetweenCount) {
  // Seasonal AR with lags 1 and 7 significant: insignificant gap = 5.
  Rng rng(9);
  std::vector<double> v(20000);
  for (size_t t = 0; t < v.size(); ++t) {
    double prev1 = t >= 1 ? v[t - 1] : 0.0;
    double prev7 = t >= 7 ? v[t - 7] : 0.0;
    v[t] = 0.4 * prev1 + 0.4 * prev7 + rng.Normal();
  }
  SignificantLags lags = FindSignificantPacfLags(v, 12);
  ASSERT_GE(lags.lags.size(), 2u);
  EXPECT_EQ(lags.lags.front(), 1u);
  // Span minus significant count.
  size_t span = lags.lags.back() - lags.lags.front() + 1;
  EXPECT_EQ(lags.insignificant_between, span - lags.lags.size());
}

TEST(SignificantLagsTest, ShortSeriesReturnsEmpty) {
  EXPECT_TRUE(FindSignificantPacfLags({1, 2, 3}).lags.empty());
}

}  // namespace
}  // namespace fedfc::ts
