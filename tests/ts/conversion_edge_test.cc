// Regression tests for edge cases in the signed/unsigned-conversion sites
// hardened while bringing the tree clean under -Wconversion -Wsign-conversion
// (see docs/STATIC_ANALYSIS.md). Each test pins an input where an
// index/count conversion could silently wrap or truncate: single-sample
// spectra, leading/trailing gaps walked with size_t sentinels, pre-epoch
// (negative) timestamps, and out-of-range histogram bin clamping. The whole
// suite also runs under ASan/UBSan via scripts/check.sh.

#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ts/adf.h"
#include "ts/calendar.h"
#include "ts/fft.h"
#include "ts/interpolation.h"
#include "ts/kl_divergence.h"
#include "ts/periodogram.h"

namespace fedfc::ts {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(ConversionEdgeTest, FftLengthOneIsIdentity) {
  // N = 1 exercises the bit-reversal loop bounds at their degenerate minimum
  // (zero butterfly stages; the size-derived shift counts must not wrap).
  std::vector<std::complex<double>> data{{3.5, -1.25}};
  Fft(&data);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_DOUBLE_EQ(data[0].real(), 3.5);
  EXPECT_DOUBLE_EQ(data[0].imag(), -1.25);
  Fft(&data, /*inverse=*/true);
  EXPECT_DOUBLE_EQ(data[0].real(), 3.5);
  EXPECT_DOUBLE_EQ(data[0].imag(), -1.25);
}

TEST(ConversionEdgeTest, RealFftOfEmptyAndSingleSample) {
  // An empty signal zero-pads to NextPowerOfTwo(0) == 1: one zero DC bin.
  const auto empty_spectrum = RealFft({});
  ASSERT_EQ(empty_spectrum.size(), 1u);
  EXPECT_DOUBLE_EQ(empty_spectrum[0].real(), 0.0);
  const auto spectrum = RealFft({2.0});
  ASSERT_EQ(spectrum.size(), 1u);
  EXPECT_NEAR(spectrum[0].real(), 2.0, 1e-12);
}

TEST(ConversionEdgeTest, FftRoundTripOnNonPaddedLength) {
  // 16 samples: forward + unnormalized inverse must reproduce the signal,
  // proving the twiddle-index arithmetic survives the cast hardening.
  const size_t n = 16;
  std::vector<std::complex<double>> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = {std::sin(0.37 * static_cast<double>(i)) + 0.1, 0.0};
  }
  auto original = data;
  Fft(&data);
  Fft(&data, /*inverse=*/true);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real() / static_cast<double>(n), original[i].real(),
                1e-10);
  }
}

TEST(ConversionEdgeTest, AdfRejectsTooShortSeriesWithoutWrapping) {
  // Effective sample size n - p - 1 is computed from size_t quantities; a
  // short series must surface InvalidArgument, not wrap to a huge lag count.
  for (size_t n = 0; n < 8; ++n) {
    std::vector<double> tiny(n, 1.0);
    for (size_t i = 0; i < n; ++i) tiny[i] += static_cast<double>(i);
    EXPECT_FALSE(AdfTest(tiny).ok()) << "n=" << n;
  }
}

TEST(ConversionEdgeTest, AdfExplicitZeroLagOnMinimalSeries) {
  // max_lag = 0 pins the augmentation-order loop's lower bound.
  std::vector<double> values;
  for (int i = 0; i < 24; ++i) {
    values.push_back((i % 2 == 0) ? 1.0 : -1.0);  // strongly stationary
  }
  const auto result = AdfTest(values, /*max_lag=*/0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().lags_used, 0u);
  EXPECT_TRUE(result.value().stationary());
}

TEST(ConversionEdgeTest, PeriodogramOfTinySignalsIsEmptyOrFinite) {
  EXPECT_TRUE(Periodogram({}).empty());
  EXPECT_TRUE(Periodogram({1.0}).empty());
  // Two samples: one usable frequency bin (k = 1 of N = 2).
  const auto points = Periodogram({1.0, -1.0});
  for (const auto& p : points) {
    EXPECT_TRUE(std::isfinite(p.power));
    EXPECT_GT(p.frequency, 0.0);
  }
}

TEST(ConversionEdgeTest, DetectSeasonalitiesPeriodBoundsRespectShortInput) {
  // Periods are bounded by n/2; with n = 6 nothing above 3 may be reported
  // (the bound is computed via a size-to-double conversion).
  std::vector<double> values;
  for (int i = 0; i < 6; ++i) values.push_back(i % 2 == 0 ? 1.0 : 0.0);
  for (const auto& s : DetectSeasonalities(values)) {
    EXPECT_GE(s.period, 2.0);
    EXPECT_LE(s.period, 3.0);
  }
}

TEST(ConversionEdgeTest, CalendarHandlesPreEpochTimestamps) {
  // Negative epoch seconds drive the unsigned-safe day/second-of-day split:
  // -1 s is 1969-12-31 23:59, not a wrapped huge day count.
  const CivilTime t = CivilFromEpoch(-1);
  EXPECT_EQ(t.year, 1969);
  EXPECT_EQ(t.month, 12);
  EXPECT_EQ(t.day, 31);
  EXPECT_EQ(t.hour, 23);
  EXPECT_EQ(t.minute, 59);
  EXPECT_EQ(t.weekday, 2);  // Wednesday
  EXPECT_EQ(t.day_of_year, 365);
  EXPECT_EQ(EpochFromCivil(1969, 12, 31, 23, 59, 59), -1);
}

TEST(ConversionEdgeTest, CalendarDayOfYearAcrossLeapBoundary) {
  const int64_t feb29 = EpochFromCivil(2020, 2, 29);
  const CivilTime t = CivilFromEpoch(feb29);
  EXPECT_EQ(t.day_of_year, 60);
  EXPECT_TRUE(IsLeapYear(2020));
  const CivilTime eoy = CivilFromEpoch(EpochFromCivil(2020, 12, 31));
  EXPECT_EQ(eoy.day_of_year, 366);
}

TEST(ConversionEdgeTest, InterpolationLeadingAndTrailingGaps) {
  // Leading/trailing scans use size_t cursors with an n sentinel (not -1);
  // gaps at both ends must fill from the nearest observation.
  const std::vector<double> filled =
      LinearInterpolate({kNan, kNan, 4.0, kNan, 8.0, kNan});
  ASSERT_EQ(filled.size(), 6u);
  EXPECT_DOUBLE_EQ(filled[0], 4.0);
  EXPECT_DOUBLE_EQ(filled[1], 4.0);
  EXPECT_DOUBLE_EQ(filled[2], 4.0);
  EXPECT_DOUBLE_EQ(filled[3], 6.0);
  EXPECT_DOUBLE_EQ(filled[4], 8.0);
  EXPECT_DOUBLE_EQ(filled[5], 8.0);
}

TEST(ConversionEdgeTest, InterpolationAllMissingFillsZeros) {
  const std::vector<double> filled = LinearInterpolate({kNan, kNan, kNan});
  ASSERT_EQ(filled.size(), 3u);
  for (double v : filled) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ConversionEdgeTest, HistogramClampsOutOfRangeSamples) {
  // Values at and beyond the range edges must clamp into the first/last bin
  // rather than index out of bounds after the float->index conversion.
  const auto hist = SmoothedHistogram({-10.0, 0.0, 1.0, 10.0}, 0.0, 1.0, 4);
  ASSERT_EQ(hist.size(), 4u);
  double total = 0.0;
  for (double p : hist) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(hist[0], hist[1]);  // the two low outliers land in bin 0
  EXPECT_GT(hist[3], hist[1]);  // the two high outliers land in bin 3
}

TEST(ConversionEdgeTest, PairwiseClientKlDegenerateClients) {
  // Constant (zero-width) clients are degenerate; fewer than two usable
  // clients yields an empty result instead of a wrapped pair count.
  EXPECT_TRUE(PairwiseClientKl({}).empty());
  EXPECT_TRUE(PairwiseClientKl({{1.0, 2.0, 3.0}}).empty());
  const auto kl = PairwiseClientKl({{1.0, 2.0, 3.0, 4.0}, {1.5, 2.5, 3.5, 4.5}});
  ASSERT_EQ(kl.size(), 2u);  // KL(0||1) and KL(1||0)
  for (double v : kl) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

}  // namespace
}  // namespace fedfc::ts
