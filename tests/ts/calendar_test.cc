#include "ts/calendar.h"

#include <gtest/gtest.h>

namespace fedfc::ts {
namespace {

TEST(CalendarTest, EpochZeroIsThursday1970) {
  CivilTime ct = CivilFromEpoch(0);
  EXPECT_EQ(ct.year, 1970);
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.weekday, 3);  // Monday-based: Thursday = 3.
  EXPECT_EQ(ct.hour, 0);
  EXPECT_EQ(ct.day_of_year, 1);
}

TEST(CalendarTest, KnownDate) {
  // 2020-02-29T12:30:00Z (leap day, Saturday).
  int64_t epoch = EpochFromCivil(2020, 2, 29, 12, 30, 0);
  CivilTime ct = CivilFromEpoch(epoch);
  EXPECT_EQ(ct.year, 2020);
  EXPECT_EQ(ct.month, 2);
  EXPECT_EQ(ct.day, 29);
  EXPECT_EQ(ct.weekday, 5);  // Saturday.
  EXPECT_EQ(ct.hour, 12);
  EXPECT_EQ(ct.minute, 30);
  EXPECT_EQ(ct.day_of_year, 60);
}

TEST(CalendarTest, RoundTripAcrossDecades) {
  for (int year = 1960; year <= 2060; year += 7) {
    int64_t epoch = EpochFromCivil(year, 6, 15, 3, 0, 0);
    CivilTime ct = CivilFromEpoch(epoch);
    EXPECT_EQ(ct.year, year);
    EXPECT_EQ(ct.month, 6);
    EXPECT_EQ(ct.day, 15);
    EXPECT_EQ(ct.hour, 3);
  }
}

TEST(CalendarTest, NegativeEpochBefore1970) {
  // 1969-12-31T23:00:00Z.
  CivilTime ct = CivilFromEpoch(-3600);
  EXPECT_EQ(ct.year, 1969);
  EXPECT_EQ(ct.month, 12);
  EXPECT_EQ(ct.day, 31);
  EXPECT_EQ(ct.hour, 23);
}

TEST(CalendarTest, WeekdayCycles) {
  int64_t monday = EpochFromCivil(2024, 1, 1);  // 2024-01-01 was a Monday.
  for (int d = 0; d < 14; ++d) {
    CivilTime ct = CivilFromEpoch(monday + d * 86400);
    EXPECT_EQ(ct.weekday, d % 7);
  }
}

TEST(CalendarTest, LeapYearRules) {
  EXPECT_TRUE(IsLeapYear(2000));   // Divisible by 400.
  EXPECT_FALSE(IsLeapYear(1900));  // Divisible by 100 only.
  EXPECT_TRUE(IsLeapYear(2024));
  EXPECT_FALSE(IsLeapYear(2023));
}

TEST(CalendarTest, DayOfYearEndOfYear) {
  CivilTime ct = CivilFromEpoch(EpochFromCivil(2023, 12, 31));
  EXPECT_EQ(ct.day_of_year, 365);
  CivilTime leap = CivilFromEpoch(EpochFromCivil(2024, 12, 31));
  EXPECT_EQ(leap.day_of_year, 366);
}

}  // namespace
}  // namespace fedfc::ts
