#include "ts/drift.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::ts {
namespace {

PageHinkleyDetector::Config TestConfig() {
  PageHinkleyDetector::Config cfg;
  cfg.delta = 0.01;
  cfg.threshold = 10.0;
  cfg.min_samples = 20;
  return cfg;
}

TEST(PageHinkleyTest, StationaryStreamStaysQuiet) {
  PageHinkleyDetector detector(TestConfig());
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    EXPECT_FALSE(detector.Update(1.0 + rng.Normal(0.0, 0.1))) << "step " << t;
  }
  EXPECT_EQ(detector.n_detections(), 0u);
}

TEST(PageHinkleyTest, LevelShiftIsDetected) {
  PageHinkleyDetector detector(TestConfig());
  Rng rng(2);
  bool detected = false;
  for (int t = 0; t < 200; ++t) {
    detector.Update(1.0 + rng.Normal(0.0, 0.1));
  }
  for (int t = 0; t < 300 && !detected; ++t) {
    detected = detector.Update(3.0 + rng.Normal(0.0, 0.1));
  }
  EXPECT_TRUE(detected);
  EXPECT_EQ(detector.n_detections(), 1u);
}

TEST(PageHinkleyTest, NoAlarmBeforeMinSamples) {
  PageHinkleyDetector::Config cfg = TestConfig();
  cfg.min_samples = 100;
  PageHinkleyDetector detector(cfg);
  // A massive jump within the warm-up window must not fire.
  for (int t = 0; t < 99; ++t) {
    EXPECT_FALSE(detector.Update(t < 10 ? 0.0 : 1000.0));
  }
}

TEST(PageHinkleyTest, ResetsAfterDetection) {
  PageHinkleyDetector detector(TestConfig());
  Rng rng(3);
  for (int t = 0; t < 100; ++t) detector.Update(rng.Normal(1.0, 0.1));
  bool detected = false;
  for (int t = 0; t < 200 && !detected; ++t) {
    detected = detector.Update(rng.Normal(5.0, 0.1));
  }
  ASSERT_TRUE(detected);
  // After the internal reset the statistic restarts near zero.
  EXPECT_EQ(detector.n_samples(), 0u);
  // The new regime's level becomes the baseline: no immediate re-alarm.
  int alarms = 0;
  for (int t = 0; t < 100; ++t) {
    if (detector.Update(rng.Normal(5.0, 0.1))) ++alarms;
  }
  EXPECT_EQ(alarms, 0);
}

TEST(PageHinkleyTest, DownwardShiftDoesNotAlarmUpwardDetector) {
  PageHinkleyDetector detector(TestConfig());
  Rng rng(4);
  for (int t = 0; t < 100; ++t) detector.Update(rng.Normal(5.0, 0.1));
  for (int t = 0; t < 200; ++t) {
    EXPECT_FALSE(detector.Update(rng.Normal(1.0, 0.1)));
  }
}

TEST(PageHinkleyTest, GradualDriftEventuallyDetected) {
  PageHinkleyDetector detector(TestConfig());
  Rng rng(5);
  bool detected = false;
  for (int t = 0; t < 3000 && !detected; ++t) {
    double level = 1.0 + 0.005 * t;  // Slow upward creep.
    detected = detector.Update(level + rng.Normal(0.0, 0.05));
  }
  EXPECT_TRUE(detected);
}

TEST(PageHinkleyTest, ForgettingFactorAdaptsBaseline) {
  PageHinkleyDetector::Config cfg = TestConfig();
  cfg.forgetting = 0.99;
  PageHinkleyDetector detector(cfg);
  Rng rng(6);
  for (int t = 0; t < 500; ++t) {
    EXPECT_FALSE(detector.Update(2.0 + rng.Normal(0.0, 0.1)));
  }
}

TEST(PageHinkleyTest, HigherThresholdNeedsMoreEvidence) {
  Rng rng(7);
  std::vector<double> stream;
  for (int t = 0; t < 100; ++t) stream.push_back(1.0 + rng.Normal(0.0, 0.1));
  for (int t = 0; t < 400; ++t) stream.push_back(2.0 + rng.Normal(0.0, 0.1));

  auto detect_at = [&](double threshold) {
    PageHinkleyDetector::Config cfg = TestConfig();
    cfg.threshold = threshold;
    PageHinkleyDetector detector(cfg);
    for (size_t t = 0; t < stream.size(); ++t) {
      if (detector.Update(stream[t])) return static_cast<int>(t);
    }
    return -1;
  };
  int fast = detect_at(5.0);
  int slow = detect_at(60.0);
  ASSERT_GE(fast, 0);
  ASSERT_GE(slow, 0);
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace fedfc::ts
