#include "ts/trend.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::ts {
namespace {

TEST(TrendTest, StationarySeriesGetsFlatTrend) {
  Rng rng(1);
  std::vector<double> v(500);
  for (double& x : v) x = 5.0 + rng.Normal(0.0, 0.5);
  TrendModel m = FitTrend(v);
  EXPECT_EQ(m.kind, TrendKind::kFlat);
  EXPECT_NEAR(m.level, 5.0, 0.1);
  EXPECT_NEAR(m.Evaluate(1000.0), 5.0, 0.1);
}

TEST(TrendTest, LinearTrendRecovered) {
  Rng rng(2);
  std::vector<double> v(600);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = 2.0 + 0.05 * static_cast<double>(t) + rng.Normal(0.0, 0.3);
  }
  TrendModel m = FitTrend(v);
  EXPECT_EQ(m.kind, TrendKind::kLinear);
  EXPECT_NEAR(m.slope, 0.05, 0.005);
  EXPECT_GT(m.r2, 0.9);
  // Extrapolation continues the line.
  EXPECT_NEAR(m.Evaluate(1000.0), 2.0 + 0.05 * 1000.0, 3.0);
}

TEST(TrendTest, LogisticTrendRecovered) {
  Rng rng(3);
  std::vector<double> v(600);
  for (size_t t = 0; t < v.size(); ++t) {
    double logistic = 10.0 / (1.0 + std::exp(-0.02 * (static_cast<double>(t) - 300)));
    v[t] = logistic + rng.Normal(0.0, 0.05);
  }
  TrendModel m = FitTrend(v);
  EXPECT_EQ(m.kind, TrendKind::kLogistic);
  EXPECT_GT(m.r2, 0.95);
  // Saturation: far-future value near the cap, not unbounded.
  double far = m.Evaluate(5000.0);
  EXPECT_LT(far, 15.0);
  EXPECT_GT(far, 8.0);
}

TEST(TrendTest, ShortSeriesFallsBackToFlat) {
  TrendModel m = FitTrend({1, 2, 3, 4, 5});
  EXPECT_EQ(m.kind, TrendKind::kFlat);
  EXPECT_DOUBLE_EQ(m.level, 3.0);
}

TEST(TrendTest, EvaluateRangeMatchesEvaluate) {
  TrendModel m;
  m.kind = TrendKind::kLinear;
  m.level = 1.0;
  m.slope = 2.0;
  std::vector<double> r = m.EvaluateRange(4);
  ASSERT_EQ(r.size(), 4u);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(r[t], m.Evaluate(static_cast<double>(t)));
  }
}

TEST(TrendTest, ToStringMentionsKind) {
  TrendModel m;
  m.kind = TrendKind::kLogistic;
  EXPECT_NE(m.ToString().find("logistic"), std::string::npos);
  EXPECT_STREQ(TrendKindName(TrendKind::kFlat), "flat");
  EXPECT_STREQ(TrendKindName(TrendKind::kLinear), "linear");
}

}  // namespace
}  // namespace fedfc::ts
