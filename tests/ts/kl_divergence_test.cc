#include "ts/kl_divergence.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/vec_math.h"

namespace fedfc::ts {
namespace {

TEST(HistogramTest, NormalizedAndPositive) {
  std::vector<double> h = SmoothedHistogram({1, 2, 3, 4, 5}, 0, 10, 8);
  EXPECT_NEAR(Sum(h), 1.0, 1e-12);
  for (double b : h) EXPECT_GT(b, 0.0);
}

TEST(HistogramTest, MassLandsInCorrectBins) {
  std::vector<double> h = SmoothedHistogram({0.5, 0.5, 9.5}, 0, 10, 10);
  EXPECT_GT(h[0], h[5]);
  EXPECT_GT(h[9], h[5]);
}

TEST(HistogramTest, OutOfRangeAndNanClamped) {
  std::vector<double> h =
      SmoothedHistogram({-100, 100, std::nan("")}, 0, 10, 4);
  EXPECT_NEAR(Sum(h), 1.0, 1e-12);  // NaN dropped, others clamped to edges.
  EXPECT_GT(h[0], 0.2);
  EXPECT_GT(h[3], 0.2);
}

TEST(KlDivergenceTest, IdenticalDistributionsGiveZero) {
  std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergenceTest, KnownValue) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.9, 0.1};
  double expected = 0.5 * std::log(0.5 / 0.9) + 0.5 * std::log(0.5 / 0.1);
  EXPECT_NEAR(KlDivergence(p, q), expected, 1e-12);
}

TEST(KlDivergenceTest, AsymmetricInGeneral) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.9, 0.1};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlDivergenceTest, NonNegative) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> p(8), q(8);
    for (size_t i = 0; i < 8; ++i) {
      p[i] = rng.Uniform(0.01, 1.0);
      q[i] = rng.Uniform(0.01, 1.0);
    }
    double sp = Sum(p), sq = Sum(q);
    for (size_t i = 0; i < 8; ++i) {
      p[i] /= sp;
      q[i] /= sq;
    }
    EXPECT_GE(KlDivergence(p, q), 0.0);
  }
}

TEST(PairwiseClientKlTest, SimilarClientsHaveSmallKl) {
  Rng rng(2);
  std::vector<std::vector<double>> clients(3);
  for (auto& c : clients) {
    c.resize(2000);
    for (double& v : c) v = rng.Normal(0.0, 1.0);
  }
  std::vector<double> kls = PairwiseClientKl(clients);
  ASSERT_EQ(kls.size(), 6u);  // 3 * 2 ordered pairs.
  for (double kl : kls) EXPECT_LT(kl, 0.1);
}

TEST(PairwiseClientKlTest, ShiftedClientHasLargeKl) {
  Rng rng(3);
  std::vector<std::vector<double>> clients(2);
  clients[0].resize(2000);
  clients[1].resize(2000);
  for (double& v : clients[0]) v = rng.Normal(0.0, 1.0);
  for (double& v : clients[1]) v = rng.Normal(10.0, 1.0);
  std::vector<double> kls = PairwiseClientKl(clients);
  ASSERT_EQ(kls.size(), 2u);
  EXPECT_GT(kls[0], 1.0);
  EXPECT_GT(kls[1], 1.0);
}

TEST(PairwiseClientKlTest, EmptyInput) {
  EXPECT_TRUE(PairwiseClientKl({}).empty());
  EXPECT_TRUE(PairwiseClientKl({{}, {}}).empty());
}

}  // namespace
}  // namespace fedfc::ts
