#include "ts/periodogram.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::ts {
namespace {

std::vector<double> Sine(size_t n, double period, double amplitude,
                         double noise_std, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t t = 0; t < n; ++t) {
    v[t] = amplitude *
               std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / period) +
           rng.Normal(0.0, noise_std);
  }
  return v;
}

TEST(PeriodogramTest, ReturnsHalfSpectrum) {
  std::vector<SpectralPoint> p = Periodogram(Sine(256, 16, 1.0, 0.0, 1));
  EXPECT_EQ(p.size(), 128u);
  EXPECT_GT(p.front().period, p.back().period);
}

TEST(PeriodogramTest, PeakAtTruePeriod) {
  std::vector<SpectralPoint> p = Periodogram(Sine(512, 16, 1.0, 0.1, 2));
  const SpectralPoint* best = &p[0];
  for (const auto& pt : p) {
    if (pt.power > best->power) best = &pt;
  }
  EXPECT_NEAR(best->period, 16.0, 1.0);
}

TEST(PeriodogramTest, TooShortReturnsEmpty) {
  EXPECT_TRUE(Periodogram({1.0, 2.0}).empty());
  EXPECT_TRUE(DetectSeasonalities({1, 2, 3}).empty());
}

TEST(DetectSeasonalitiesTest, FindsSinglePeriod) {
  auto comps = DetectSeasonalities(Sine(512, 32, 1.0, 0.1, 3));
  ASSERT_FALSE(comps.empty());
  EXPECT_NEAR(comps.front().period, 32.0, 2.0);
  EXPECT_GT(comps.front().strength, 0.2);
}

TEST(DetectSeasonalitiesTest, FindsTwoPeriods) {
  std::vector<double> a = Sine(1024, 12, 1.0, 0.0, 4);
  std::vector<double> b = Sine(1024, 100, 0.8, 0.05, 5);
  std::vector<double> combined(1024);
  for (size_t t = 0; t < 1024; ++t) combined[t] = a[t] + b[t];
  auto comps = DetectSeasonalities(combined, 5);
  ASSERT_GE(comps.size(), 2u);
  bool found12 = false, found100 = false;
  for (const auto& c : comps) {
    if (std::fabs(c.period - 12) < 2) found12 = true;
    if (std::fabs(c.period - 100) < 12) found100 = true;
  }
  EXPECT_TRUE(found12);
  EXPECT_TRUE(found100);
}

TEST(DetectSeasonalitiesTest, WhiteNoiseFindsNothingStrong) {
  Rng rng(6);
  std::vector<double> v(1024);
  for (double& x : v) x = rng.Normal();
  auto comps = DetectSeasonalities(v, 5, /*min_strength=*/0.05);
  EXPECT_TRUE(comps.empty());
}

TEST(DetectSeasonalitiesTest, SuppressesNearDuplicates) {
  auto comps = DetectSeasonalities(Sine(2048, 64, 1.0, 0.02, 7), 5);
  // No two reported periods should be within 15% of each other.
  for (size_t i = 0; i < comps.size(); ++i) {
    for (size_t j = i + 1; j < comps.size(); ++j) {
      EXPECT_GT(std::fabs(comps[i].period - comps[j].period),
                0.15 * comps[i].period);
    }
  }
}

TEST(WeightedPeriodogramTest, CombinesClientsWithSharedSeason) {
  // Three clients share a 24-sample season; weights by size.
  std::vector<std::vector<double>> clients = {
      Sine(256, 24, 1.0, 0.2, 10),
      Sine(300, 24, 1.0, 0.2, 11),
      Sine(280, 24, 1.0, 0.2, 12),
  };
  std::vector<double> weights = {256, 300, 280};
  auto comps = DetectSeasonalitiesWeighted(clients, weights, 3);
  ASSERT_FALSE(comps.empty());
  EXPECT_NEAR(comps.front().period, 24.0, 3.0);
}

TEST(WeightedPeriodogramTest, HighWeightClientDominates) {
  std::vector<std::vector<double>> clients = {
      Sine(512, 16, 1.0, 0.1, 13),
      Sine(512, 90, 1.0, 0.1, 14),
  };
  // Nearly all weight on the period-16 client.
  auto comps = DetectSeasonalitiesWeighted(clients, {100.0, 0.5}, 1);
  ASSERT_FALSE(comps.empty());
  EXPECT_NEAR(comps.front().period, 16.0, 2.0);
}

TEST(WeightedPeriodogramTest, DegenerateInputs) {
  EXPECT_TRUE(DetectSeasonalitiesWeighted({}, {}).empty());
  EXPECT_TRUE(DetectSeasonalitiesWeighted({{1, 2, 3}}, {3.0}).empty());
}

}  // namespace
}  // namespace fedfc::ts
