#include "ts/fractal.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::ts {
namespace {

TEST(FractalTest, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(HiguchiFractalDimension({1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(HiguchiFractalDimension(std::vector<double>(100, 5.0)), 1.0);
}

TEST(FractalTest, SmoothSineIsNearOne) {
  std::vector<double> v(1000);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 500.0);
  }
  double d = HiguchiFractalDimension(v);
  EXPECT_LT(d, 1.3);
}

TEST(FractalTest, WhiteNoiseIsNearTwo) {
  Rng rng(1);
  std::vector<double> v(4000);
  for (double& x : v) x = rng.Normal();
  double d = HiguchiFractalDimension(v);
  EXPECT_GT(d, 1.85);
}

TEST(FractalTest, RandomWalkIsNearOnePointFive) {
  Rng rng(2);
  std::vector<double> v(4000);
  double x = 0.0;
  for (double& e : v) {
    x += rng.Normal();
    e = x;
  }
  double d = HiguchiFractalDimension(v);
  EXPECT_NEAR(d, 1.5, 0.15);
}

TEST(FractalTest, ResultAlwaysInUnitRange) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> v(200);
    for (double& x : v) x = rng.Uniform(-100, 100);
    double d = HiguchiFractalDimension(v);
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 2.0);
  }
}

TEST(FractalTest, OrderingSmoothToRough) {
  Rng rng(4);
  std::vector<double> smooth(2000), walk(2000), noise(2000);
  double acc = 0.0;
  for (size_t t = 0; t < 2000; ++t) {
    smooth[t] = std::sin(static_cast<double>(t) / 100.0);
    acc += rng.Normal();
    walk[t] = acc;
    noise[t] = rng.Normal();
  }
  double ds = HiguchiFractalDimension(smooth);
  double dw = HiguchiFractalDimension(walk);
  double dn = HiguchiFractalDimension(noise);
  EXPECT_LT(ds, dw);
  EXPECT_LT(dw, dn);
}

}  // namespace
}  // namespace fedfc::ts
