#include "ts/interpolation.h"

#include <gtest/gtest.h>

namespace fedfc::ts {
namespace {

TEST(InterpolationTest, NoMissingIsIdentity) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_EQ(LinearInterpolate(v), v);
}

TEST(InterpolationTest, InteriorGapInterpolatesLinearly) {
  std::vector<double> v = {0, MissingValue(), MissingValue(), 3};
  std::vector<double> out = LinearInterpolate(v);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
}

TEST(InterpolationTest, LeadingGapBackfills) {
  std::vector<double> v = {MissingValue(), MissingValue(), 5, 6};
  std::vector<double> out = LinearInterpolate(v);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(InterpolationTest, TrailingGapForwardFills) {
  std::vector<double> v = {1, 2, MissingValue(), MissingValue()};
  std::vector<double> out = LinearInterpolate(v);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
  EXPECT_DOUBLE_EQ(out[3], 2.0);
}

TEST(InterpolationTest, FullyMissingBecomesZeros) {
  std::vector<double> v = {MissingValue(), MissingValue()};
  std::vector<double> out = LinearInterpolate(v);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(InterpolationTest, SingleObservationFillsEverything) {
  std::vector<double> v = {MissingValue(), 7, MissingValue()};
  std::vector<double> out = LinearInterpolate(v);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[2], 7.0);
}

TEST(InterpolationTest, EmptyInput) {
  EXPECT_TRUE(LinearInterpolate(std::vector<double>{}).empty());
}

TEST(InterpolationTest, SeriesOverloadPreservesTimeAxis) {
  Series s({1, MissingValue(), 3}, 1000, 60);
  Series out = LinearInterpolate(s);
  EXPECT_EQ(out.start_epoch(), 1000);
  EXPECT_EQ(out.interval_seconds(), 60);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

// Property sweep: interpolation never introduces values outside the observed
// range for interior gaps.
class InterpolationRangeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(InterpolationRangeTest, StaysWithinNeighbourRange) {
  size_t gap = GetParam();
  std::vector<double> v = {2.0};
  for (size_t i = 0; i < gap; ++i) v.push_back(MissingValue());
  v.push_back(8.0);
  std::vector<double> out = LinearInterpolate(v);
  for (size_t i = 1; i + 1 < out.size(); ++i) {
    EXPECT_GE(out[i], 2.0);
    EXPECT_LE(out[i], 8.0);
    EXPECT_GT(out[i], out[i - 1]);  // Monotone between increasing endpoints.
  }
}

INSTANTIATE_TEST_SUITE_P(GapSizes, InterpolationRangeTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

}  // namespace
}  // namespace fedfc::ts
