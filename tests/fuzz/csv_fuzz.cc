// Fuzzes data::ParseSeriesCsv — the loader every dataset enters through:
// column-count and numeric-field validation, header detection, the epoch
// range check in front of the double -> int64 timestamp cast, and the
// regular-interval scan. An accepted series always has a positive interval
// and at least two observations.

#include <sstream>
#include <string>

#include "data/csv.h"
#include "fuzz_harness.h"
#include "ts/series.h"

int FedfcFuzzOne(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream in(text);
  fedfc::Result<fedfc::ts::Series> series =
      fedfc::data::ParseSeriesCsv(in, "fuzz input");
  if (series.ok()) {
    FEDFC_FUZZ_REQUIRE(series->size() >= 2);
    FEDFC_FUZZ_REQUIRE(series->interval_seconds() > 0);
  }
  return 0;
}
