// Fuzzes fl::Payload::Deserialize — the body decoder behind every task
// frame: entry count cap, per-entry key/tag/value length validation,
// duplicate-key and trailing-byte rejection.
//
// Properties on accepted payloads: the semantic round-trip
// Deserialize(Serialize(p)) == p (byte identity is NOT required — the
// serializer emits keys in sorted order, the input may not), and every
// advertised key is readable through exactly its typed getter.

#include <string>
#include <vector>

#include "fl/payload.h"
#include "fuzz_harness.h"

int FedfcFuzzOne(const uint8_t* data, size_t size) {
  using fedfc::fl::Payload;

  const std::vector<uint8_t> bytes = fedfc::fuzz::BytesToVector(data, size);
  fedfc::Result<Payload> decoded = Payload::Deserialize(bytes);
  if (!decoded.ok()) return 0;

  const Payload& payload = *decoded;
  const std::vector<uint8_t> re_encoded = payload.Serialize();
  fedfc::Result<Payload> round_tripped = Payload::Deserialize(re_encoded);
  FEDFC_FUZZ_REQUIRE(round_tripped.ok());
  FEDFC_FUZZ_REQUIRE(*round_tripped == payload);

  for (const std::string& key : payload.Keys()) {
    // Exactly one typed getter succeeds per key; the others return typed
    // mismatch errors, never crash.
    int readable = 0;
    if (payload.GetDouble(key).ok()) ++readable;
    if (payload.GetInt(key).ok()) ++readable;
    if (payload.GetString(key).ok()) ++readable;
    if (payload.GetTensor(key).ok()) ++readable;
    FEDFC_FUZZ_REQUIRE(readable == 1);
  }
  return 0;
}
