// Replay driver: runs FedfcFuzzOne over every file in the directories (or
// single files) named on the command line. This is how the committed seed
// corpus and crash-regression corpus execute as plain ctest cases in every
// build — no clang or libFuzzer required. A missing directory is skipped
// (a harness without regressions yet is normal); a crash or a violated
// FEDFC_FUZZ_REQUIRE aborts the process and fails the test.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_harness.h"

namespace {

std::vector<uint8_t> ReadFileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  size_t replayed = 0;
  for (int a = 1; a < argc; ++a) {
    const std::filesystem::path root(argv[a]);
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Directory iteration order is filesystem-dependent; sort so a replay
      // failure reproduces identically everywhere.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        std::vector<uint8_t> bytes = ReadFileBytes(file);
        std::fprintf(stderr, "replay %s (%zu bytes)\n", file.c_str(),
                     bytes.size());
        int rc = FedfcFuzzOne(bytes.data(), bytes.size());
        if (rc != 0) {
          std::fprintf(stderr, "harness returned %d for %s\n", rc,
                       file.c_str());
          return 1;
        }
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      std::vector<uint8_t> bytes = ReadFileBytes(root);
      int rc = FedfcFuzzOne(bytes.data(), bytes.size());
      if (rc != 0) return 1;
      ++replayed;
    } else {
      std::fprintf(stderr, "skipping %s (not present)\n", root.c_str());
    }
  }
  std::fprintf(stderr, "replayed %zu inputs cleanly\n", replayed);
  return 0;
}
