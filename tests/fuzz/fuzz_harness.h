#ifndef FEDFC_TESTS_FUZZ_FUZZ_HARNESS_H_
#define FEDFC_TESTS_FUZZ_FUZZ_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

// Shared shape of every fuzz harness in this directory. Each <name>_fuzz.cc
// defines exactly one FedfcFuzzOne; the same source builds two ways:
//
//   - replay binary (every build, any compiler): replay_main.cc feeds it
//     files from the committed corpus + crash-regression directories, so
//     each crasher ever found stays a permanent ctest regression
//     (fuzz.replay.<name>).
//   - libFuzzer target (FEDFC_FUZZ=ON, clang): libfuzzer_entry.cc adapts it
//     to LLVMFuzzerTestOneInput for coverage-guided runs under ASan+UBSan.
//
// Contract: decoding arbitrary bytes returns a typed error or a valid
// object — it never crashes, hangs, or trips a sanitizer. Harnesses assert
// round-trip properties with FEDFC_FUZZ_REQUIRE, which aborts so both the
// fuzzer and the replay driver treat a violated property as a crash.

/// Processes one fuzz input. Always returns 0 (libFuzzer convention).
int FedfcFuzzOne(const uint8_t* data, size_t size);

/// Property assertion for harnesses: abort (not exit) on violation so
/// libFuzzer saves the input as a crash artifact.
#define FEDFC_FUZZ_REQUIRE(cond)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FEDFC_FUZZ_REQUIRE failed at %s:%d: %s\n", \
                   __FILE__, __LINE__, #cond);                         \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

namespace fedfc::fuzz {

/// Reinterprets the input bytes as a double tensor (truncating the tail),
/// the shape every FromTensor-family decoder consumes.
inline std::vector<double> BytesToDoubles(const uint8_t* data, size_t size) {
  std::vector<double> out(size / sizeof(double));
  if (!out.empty()) std::memcpy(out.data(), data, out.size() * sizeof(double));
  return out;
}

inline std::vector<uint8_t> BytesToVector(const uint8_t* data, size_t size) {
  return std::vector<uint8_t>(data, data + size);
}

}  // namespace fedfc::fuzz

#endif  // FEDFC_TESTS_FUZZ_FUZZ_HARNESS_H_
