// Fuzzes the typed fl/task_codec request/reply decoders, structure-aware:
// the raw bytes are first deserialized as a Payload (rejected inputs stop
// there — payload_fuzz owns that layer), then every typed FromPayload runs
// against it. Each successful decode must survive the ToPayload ->
// FromPayload round-trip; shape invariants the decoders advertise (e.g.
// ForecastRequest's divisibility) are asserted.

#include "fl/payload.h"
#include "fl/task_codec.h"
#include "fuzz_harness.h"

namespace {

template <typename T>
void ExerciseCodec(const fedfc::fl::Payload& payload) {
  fedfc::Result<T> decoded = T::FromPayload(payload);
  if (!decoded.ok()) return;
  const fedfc::fl::Payload re_encoded = decoded->ToPayload();
  fedfc::Result<T> round_tripped = T::FromPayload(re_encoded);
  FEDFC_FUZZ_REQUIRE(round_tripped.ok());
}

}  // namespace

int FedfcFuzzOne(const uint8_t* data, size_t size) {
  namespace fl = fedfc::fl;

  const std::vector<uint8_t> bytes = fedfc::fuzz::BytesToVector(data, size);
  fedfc::Result<fl::Payload> decoded = fl::Payload::Deserialize(bytes);
  if (!decoded.ok()) return 0;
  const fl::Payload& payload = *decoded;

  ExerciseCodec<fl::MetaFeaturesRequest>(payload);
  ExerciseCodec<fl::MetaFeaturesReply>(payload);
  ExerciseCodec<fl::FeatureImportanceRequest>(payload);
  ExerciseCodec<fl::FeatureImportanceReply>(payload);
  ExerciseCodec<fl::FitEvaluateRequest>(payload);
  ExerciseCodec<fl::FitEvaluateReply>(payload);
  ExerciseCodec<fl::FitFinalRequest>(payload);
  ExerciseCodec<fl::FitFinalReply>(payload);
  ExerciseCodec<fl::EvaluateModelRequest>(payload);
  ExerciseCodec<fl::EvaluateModelReply>(payload);
  ExerciseCodec<fl::NBeatsRoundRequest>(payload);
  ExerciseCodec<fl::NBeatsRoundReply>(payload);
  ExerciseCodec<fl::NBeatsEvaluateRequest>(payload);
  ExerciseCodec<fl::NBeatsEvaluateReply>(payload);
  ExerciseCodec<fl::NumExamplesRequest>(payload);
  ExerciseCodec<fl::NumExamplesReply>(payload);
  ExerciseCodec<fl::ForecastReply>(payload);
  ExerciseCodec<fl::PingRequest>(payload);
  ExerciseCodec<fl::PingReply>(payload);
  ExerciseCodec<fl::ModelArtifactRecord>(payload);

  // ForecastRequest advertises shape invariants beyond the round-trip: a
  // decoded request always describes a well-formed non-empty matrix.
  fedfc::Result<fl::ForecastRequest> forecast =
      fl::ForecastRequest::FromPayload(payload);
  if (forecast.ok()) {
    FEDFC_FUZZ_REQUIRE(forecast->n_cols >= 1);
    FEDFC_FUZZ_REQUIRE(!forecast->rows.empty());
    FEDFC_FUZZ_REQUIRE(forecast->rows.size() %
                           static_cast<size_t>(forecast->n_cols) ==
                       0);
    const fl::Payload re_encoded = forecast->ToPayload();
    fedfc::Result<fl::ForecastRequest> round_tripped =
        fl::ForecastRequest::FromPayload(re_encoded);
    FEDFC_FUZZ_REQUIRE(round_tripped.ok());
  }
  return 0;
}
