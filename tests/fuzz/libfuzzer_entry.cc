// libFuzzer adapter: compiled into the fuzzer binaries only (FEDFC_FUZZ=ON,
// clang). The replay binaries use replay_main.cc instead, so the harness
// body in <name>_fuzz.cc is identical in both builds.

#include "fuzz_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return FedfcFuzzOne(data, size);
}
