// Fuzzes net::DecodeFrame — the outermost decoder on every socket: v2
// header validation (magic, version, type, status, length caps, the
// client_index word), body bounds, CRC trailer, trailing-byte rejection.
//
// Properties on accepted frames:
//   - re-encoding is the identity on the wire bytes (decode is strict and
//     the encoding is canonical, so decode(x) ok => encode(decode(x)) == x);
//   - error frames round-trip through ErrorFrameStatus;
//   - EncodedFrameSize agrees with the actual encoding.

#include "fuzz_harness.h"
#include "net/frame.h"

int FedfcFuzzOne(const uint8_t* data, size_t size) {
  using fedfc::net::DecodeFrame;
  using fedfc::net::EncodeFrame;

  const std::vector<uint8_t> bytes = fedfc::fuzz::BytesToVector(data, size);
  fedfc::Result<fedfc::net::Frame> decoded = DecodeFrame(bytes);
  if (!decoded.ok()) return 0;

  const fedfc::net::Frame& frame = *decoded;
  const std::vector<uint8_t> re_encoded = EncodeFrame(frame);
  FEDFC_FUZZ_REQUIRE(re_encoded == bytes);
  FEDFC_FUZZ_REQUIRE(fedfc::net::EncodedFrameSize(frame) == bytes.size());

  if (frame.type == fedfc::net::FrameType::kError) {
    // The decoded status must reproduce the wire status code exactly (an
    // error frame may legally carry kOk — MakeErrorFrame never emits one,
    // but the decoder does not forbid it).
    const fedfc::Status status = fedfc::net::ErrorFrameStatus(frame);
    FEDFC_FUZZ_REQUIRE(status.code() == frame.status_code);
  }
  return 0;
}
