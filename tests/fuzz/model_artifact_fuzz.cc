// Fuzzes the model-artifact decode chain — the bytes a serving process
// trusts least: automl::DecodeModelArtifact (Payload -> record -> strict
// Configuration::FromTensor + FeatureEngineeringSpec::FromTensor + blob
// caps), then Forecaster::FromArtifact, which drives DeserializeModel down
// to GbdtTree::FromSpan and the feature-width validation. A decoded
// artifact that builds a Forecaster must answer a Forecast without
// crashing.
//
// The tail of the input doubles as raw tensors for the FromTensor-family
// decoders (Configuration, FeatureEngineeringSpec, ClientMetaFeatures) and
// for automl::DeserializeModel, so the tensor-level decoders see shapes the
// artifact path would reject earlier.

#include <memory>
#include <vector>

#include "automl/model_io.h"
#include "automl/search_space.h"
#include "core/matrix.h"
#include "features/feature_engineering.h"
#include "features/meta_features.h"
#include "fuzz_harness.h"

namespace {

/// Largest schema width we are willing to allocate a probe row for.
constexpr size_t kMaxProbeFeatures = 1u << 16;

void ExerciseArtifact(const std::vector<uint8_t>& bytes) {
  namespace automl = fedfc::automl;
  fedfc::Result<automl::ModelArtifact> artifact =
      automl::DecodeModelArtifact(bytes);
  if (!artifact.ok()) return;

  // Accepted artifacts re-encode losslessly (tensors and blob are carried
  // verbatim; config/spec decodes are strict and canonical).
  const std::vector<uint8_t> re_encoded = automl::EncodeModelArtifact(*artifact);
  fedfc::Result<automl::ModelArtifact> round_tripped =
      automl::DecodeModelArtifact(re_encoded);
  FEDFC_FUZZ_REQUIRE(round_tripped.ok());
  FEDFC_FUZZ_REQUIRE(round_tripped->blob == artifact->blob);

  fedfc::Result<automl::Forecaster> forecaster =
      automl::Forecaster::FromArtifact(*artifact);
  if (!forecaster.ok()) return;
  const size_t n_features = forecaster->n_features();
  if (n_features == 0 || n_features > kMaxProbeFeatures) return;
  fedfc::Matrix probe(1, n_features, 0.0);
  fedfc::Result<std::vector<double>> prediction = forecaster->Forecast(probe);
  if (prediction.ok()) {
    FEDFC_FUZZ_REQUIRE(prediction->size() == 1);
  }
}

void ExerciseTensorDecoders(const std::vector<double>& tensor) {
  namespace automl = fedfc::automl;
  namespace features = fedfc::features;

  fedfc::Result<automl::Configuration> config =
      automl::Configuration::FromTensor(tensor);
  if (config.ok()) {
    // A decoded configuration re-encodes to a decodable tensor.
    fedfc::Result<automl::Configuration> round_tripped =
        automl::Configuration::FromTensor(config->ToTensor());
    FEDFC_FUZZ_REQUIRE(round_tripped.ok());
    // Feed the raw tail to DeserializeModel under this configuration: the
    // blob decoders (linear SetParameters, GbdtRegressor::DeserializeModel,
    // GbdtTree::FromSpan) must reject or accept, never crash — and any
    // accepted model that passes the width check must predict cleanly.
    fedfc::Result<std::unique_ptr<fedfc::ml::Regressor>> model =
        automl::DeserializeModel(*config, tensor);
    if (model.ok()) {
      fedfc::Matrix probe(1, 4, 0.0);
      const fedfc::Status width_check = (*model)->ValidateFeatureWidth(4);
      if (width_check.ok()) {
        const std::vector<double> prediction = (*model)->Predict(probe);
        FEDFC_FUZZ_REQUIRE(prediction.size() == 1);
      }
    }
  }

  fedfc::Result<features::FeatureEngineeringSpec> spec =
      features::FeatureEngineeringSpec::FromTensor(tensor);
  if (spec.ok()) {
    fedfc::Result<features::FeatureEngineeringSpec> round_tripped =
        features::FeatureEngineeringSpec::FromTensor(spec->ToTensor());
    FEDFC_FUZZ_REQUIRE(round_tripped.ok());
  }

  fedfc::Result<features::ClientMetaFeatures> meta =
      features::ClientMetaFeatures::FromTensor(tensor);
  if (meta.ok()) {
    fedfc::Result<features::ClientMetaFeatures> round_tripped =
        features::ClientMetaFeatures::FromTensor(meta->ToTensor());
    FEDFC_FUZZ_REQUIRE(round_tripped.ok());
  }
}

}  // namespace

int FedfcFuzzOne(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> bytes = fedfc::fuzz::BytesToVector(data, size);
  ExerciseArtifact(bytes);
  ExerciseTensorDecoders(fedfc::fuzz::BytesToDoubles(data, size));
  return 0;
}
