// Fuzzes the serving registry's untrusted-disk surface via a tmpdir shim:
// automl::ParseRegistryVersionDir (directory-name parser, incl. overflow
// and non-canonical names), automl::ParseRegistryManifest (the MANIFEST
// text record), and serve::ModelRegistry::LatestVersion/Load/LoadLatest
// over a scratch registry whose MANIFEST and artifact bytes are the fuzz
// input. Decoy version directories with hostile names exercise the
// committed-version scan.
//
// Input layout for the shim: [u16 LE manifest length][manifest text]
// [artifact bytes]. Registry loads may fail (almost always will — the CRC
// must match) but never crash.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "automl/model_io.h"
#include "fuzz_harness.h"
#include "serve/registry.h"

namespace {

namespace fs = std::filesystem;

/// Per-process scratch registry root with decoy version directories (no
/// MANIFEST — committed-version scans must skip them after parsing their
/// names) created once.
const std::string& ScratchRoot() {
  static const std::string root = [] {
    std::string templ =
        (fs::temp_directory_path() / "fedfc_registry_fuzz.XXXXXX").string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const char* made = mkdtemp(buf.data());
    const std::string r = made != nullptr ? made : templ;
    for (const char* name : {"v", "va", "v-2", "v01", "v0x7",
                             "v99999999999999999999", "x001", "v002"}) {
      std::error_code ec;
      fs::create_directories(fs::path(r) / name, ec);
    }
    std::error_code ec;
    fs::create_directories(fs::path(r) / "v001", ec);
    return r;
  }();
  return root;
}

void WriteBytes(const fs::path& path, const uint8_t* data, size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

}  // namespace

int FedfcFuzzOne(const uint8_t* data, size_t size) {
  namespace automl = fedfc::automl;

  const std::string text(reinterpret_cast<const char*>(data), size);

  // Directory-name parser: accepted names are exactly the canonical ones.
  const std::string name = text.substr(0, std::min<size_t>(text.size(), 32));
  fedfc::Result<int> version = automl::ParseRegistryVersionDir(name);
  if (version.ok()) {
    FEDFC_FUZZ_REQUIRE(automl::RegistryVersionDir(*version) == name);
  }

  // MANIFEST text parser: accepted records survive the format round-trip.
  fedfc::Result<automl::RegistryManifest> manifest =
      automl::ParseRegistryManifest(text);
  if (manifest.ok()) {
    fedfc::Result<automl::RegistryManifest> round_tripped =
        automl::ParseRegistryManifest(
            automl::FormatRegistryManifest(*manifest));
    FEDFC_FUZZ_REQUIRE(round_tripped.ok());
    FEDFC_FUZZ_REQUIRE(round_tripped->version == manifest->version);
    FEDFC_FUZZ_REQUIRE(round_tripped->file == manifest->file);
    FEDFC_FUZZ_REQUIRE(round_tripped->bytes == manifest->bytes);
    FEDFC_FUZZ_REQUIRE(round_tripped->crc32 == manifest->crc32);
  }

  // Registry shim: split the input into MANIFEST + artifact bytes, install
  // them as v001, and drive every read-side query.
  if (size >= 2) {
    const size_t declared = static_cast<size_t>(data[0]) |
                            (static_cast<size_t>(data[1]) << 8);
    const size_t manifest_len = std::min(declared, size - 2);
    const fs::path dir = fs::path(ScratchRoot()) / "v001";
    WriteBytes(dir / automl::kRegistryManifestFile, data + 2, manifest_len);
    WriteBytes(dir / automl::kRegistryModelFile, data + 2 + manifest_len,
               size - 2 - manifest_len);

    const fedfc::serve::ModelRegistry registry(ScratchRoot());
    fedfc::Result<int> latest = registry.LatestVersion();
    if (latest.ok()) {
      FEDFC_FUZZ_REQUIRE(*latest == 0 || *latest == 1);
    }
    fedfc::Result<automl::ModelArtifact> loaded = registry.Load(1);
    fedfc::Result<std::pair<int, automl::ModelArtifact>> both =
        registry.LoadLatest();
    // LoadLatest agrees with Load(LatestVersion()): it succeeds iff some
    // version is committed and loadable.
    FEDFC_FUZZ_REQUIRE(both.ok() == (latest.ok() && *latest == 1 && loaded.ok()));
  }
  return 0;
}
