#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/vec_math.h"
#include "data/benchmark_suite.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "ts/adf.h"
#include "ts/periodogram.h"

namespace fedfc::data {
namespace {

TEST(GeneratorTest, LengthAndDeterminism) {
  SignalSpec spec;
  spec.length = 300;
  Rng r1(5), r2(5);
  ts::Series a = GenerateSignal(spec, &r1);
  ts::Series b = GenerateSignal(spec, &r2);
  EXPECT_EQ(a.size(), 300u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(GeneratorTest, SeasonalityIsDetectable) {
  SignalSpec spec;
  spec.length = 1024;
  spec.level = 0.0;
  spec.seasonalities = {{32.0, 5.0, 0.0}};
  spec.noise_std = 0.5;
  Rng rng(6);
  ts::Series s = GenerateSignal(spec, &rng);
  auto comps = ts::DetectSeasonalities(s.values(), 3);
  ASSERT_FALSE(comps.empty());
  EXPECT_NEAR(comps.front().period, 32.0, 3.0);
}

TEST(GeneratorTest, RandomWalkComponentMakesUnitRoot) {
  SignalSpec spec;
  spec.length = 1000;
  spec.random_walk_std = 1.0;
  spec.noise_std = 0.01;
  Rng rng(7);
  ts::Series s = GenerateSignal(spec, &rng);
  EXPECT_FALSE(ts::IsStationary(s.values(), true));
}

TEST(GeneratorTest, MissingFractionApproximatelyRespected) {
  SignalSpec spec;
  spec.length = 2000;
  spec.missing_fraction = 0.2;
  Rng rng(8);
  ts::Series s = GenerateSignal(spec, &rng);
  EXPECT_NEAR(s.MissingFraction(), 0.2, 0.05);
}

TEST(GeneratorTest, MultiplicativeCompositionScalesWithLevel) {
  SignalSpec spec;
  spec.length = 500;
  spec.level = 100.0;
  spec.composition = Composition::kMultiplicative;
  spec.seasonalities = {{24.0, 10.0, 0.0}};
  spec.noise_std = 0.01;
  Rng rng(9);
  ts::Series s = GenerateSignal(spec, &rng);
  EXPECT_GT(StdDev(s.values()), 1.0);
  EXPECT_NEAR(Mean(s.values()), 100.0, 20.0);
}

TEST(GeneratorTest, CorrelatedBasketSharesFactor) {
  Rng rng(10);
  std::vector<ts::Series> basket =
      GenerateCorrelatedBasket(5, 400, 50.0, 0.5, 0.05, 86400, &rng);
  ASSERT_EQ(basket.size(), 5u);
  // Pairwise return correlation should be high (common factor dominates).
  auto returns = [](const ts::Series& s) {
    std::vector<double> r;
    for (size_t i = 1; i < s.size(); ++i) r.push_back(s[i] - s[i - 1]);
    return r;
  };
  double corr = PearsonCorrelation(returns(basket[0]), returns(basket[1]));
  EXPECT_GT(corr, 0.5);
}

TEST(MakeFederatedTest, SplitsAndMinInstances) {
  SignalSpec spec;
  spec.length = 1000;
  Rng rng(11);
  ts::Series s = GenerateSignal(spec, &rng);
  Result<FederatedDataset> ds = MakeFederated("test", s, 5, 100);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->n_clients(), 5u);
  EXPECT_EQ(ds->total_instances(), 1000u);
  EXPECT_FALSE(ds->naturally_federated);
  EXPECT_FALSE(MakeFederated("too-small", s, 5, 500).ok());
}

TEST(CsvTest, WriteReadRoundTrip) {
  ts::Series s({1.5, ts::MissingValue(), 3.25}, 1000000, 3600);
  std::string path = std::filesystem::temp_directory_path() / "fedfc_test.csv";
  ASSERT_TRUE(WriteSeriesCsv(s, path).ok());
  Result<ts::Series> back = ReadSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ(back->start_epoch(), 1000000);
  EXPECT_EQ(back->interval_seconds(), 3600);
  EXPECT_DOUBLE_EQ((*back)[0], 1.5);
  EXPECT_TRUE(ts::IsMissing((*back)[1]));
  EXPECT_DOUBLE_EQ((*back)[2], 3.25);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsBadFiles) {
  EXPECT_FALSE(ReadSeriesCsv("/nonexistent/path.csv").ok());
  std::string path = std::filesystem::temp_directory_path() / "fedfc_bad.csv";
  {
    std::ofstream out(path);
    out << "timestamp,value\n100,1.0\n300,2.0\n350,3.0\n";  // Irregular.
  }
  EXPECT_FALSE(ReadSeriesCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, ParseRejectsOutOfRangeTimestamps) {
  // Crash regressions from the csv fuzzer (tests/fuzz/regressions/csv/):
  // casting 1e300 to int64 and subtracting +/-9e18 epochs were both UB
  // before ParseSeriesCsv bounded the timestamp range.
  std::istringstream huge("1e300,1\n2e300,2\n");
  EXPECT_FALSE(ParseSeriesCsv(huge, "huge").ok());
  std::istringstream wide("-9e18,1\n9e18,2\n");
  EXPECT_FALSE(ParseSeriesCsv(wide, "wide").ok());
  std::istringstream nan_ts("nan,1\n3600,2\n");
  EXPECT_FALSE(ParseSeriesCsv(nan_ts, "nan").ok());
}

TEST(CsvTest, ParseSeriesCsvMatchesFileReader) {
  std::istringstream in("timestamp,value\n0,1.0\n3600,2.0\n7200,3.0\n");
  Result<ts::Series> series = ParseSeriesCsv(in, "inline");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 3u);
  EXPECT_EQ(series->interval_seconds(), 3600);
}

TEST(CsvTest, SplitCsvLineHandlesEmptyFields) {
  std::vector<std::string> f = SplitCsvLine("a,,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "");
}

TEST(BenchmarkSuiteTest, HasTwelveEntriesMatchingTable3) {
  const auto& info = BenchmarkSuiteInfo();
  ASSERT_EQ(info.size(), 12u);
  EXPECT_STREQ(info[0].name, "BOE-XUDLERD");
  EXPECT_EQ(info[0].paper_length, 15653u);
  EXPECT_EQ(info[0].paper_clients, 20);
  EXPECT_STREQ(info[2].name, "USBirthsDaily");
  EXPECT_EQ(info[2].paper_clients, 5);
  // The three ETF datasets are naturally federated.
  for (size_t i = 9; i < 12; ++i) EXPECT_TRUE(info[i].naturally_federated);
  for (size_t i = 0; i < 9; ++i) EXPECT_FALSE(info[i].naturally_federated);
}

TEST(BenchmarkSuiteTest, BuildsScaledDataset) {
  BenchmarkSuiteOptions opt;
  opt.length_scale = 16.0;
  Result<FederatedDataset> ds = BuildBenchmarkDataset(2, opt);  // USBirths.
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->n_clients(), 5u);
  EXPECT_GE(ds->total_instances(), 5u * opt.min_instances_per_client);
  EXPECT_GT(ds->consolidated.size(), 0u);
}

TEST(BenchmarkSuiteTest, EtfDatasetsHaveNoConsolidatedSeries) {
  BenchmarkSuiteOptions opt;
  opt.length_scale = 8.0;
  Result<FederatedDataset> ds = BuildBenchmarkDataset(9, opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->naturally_federated);
  EXPECT_EQ(ds->consolidated.size(), 0u);
  EXPECT_EQ(ds->n_clients(), 10u);
}

TEST(BenchmarkSuiteTest, OutOfRangeIndexRejected) {
  EXPECT_FALSE(BuildBenchmarkDataset(12, BenchmarkSuiteOptions{}).ok());
}

TEST(BenchmarkSuiteTest, DeterministicForFixedSeed) {
  BenchmarkSuiteOptions opt;
  opt.length_scale = 32.0;
  Result<FederatedDataset> a = BuildBenchmarkDataset(0, opt);
  Result<FederatedDataset> b = BuildBenchmarkDataset(0, opt);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->clients.size(), b->clients.size());
  for (size_t i = 0; i < a->clients[0].size(); ++i) {
    EXPECT_DOUBLE_EQ(a->clients[0][i], b->clients[0][i]);
  }
}

// Sweep: every suite entry builds at fast scale with the paper's client count.
class SuiteSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SuiteSweepTest, BuildsWithPaperClientCount) {
  BenchmarkSuiteOptions opt;
  opt.length_scale = 16.0;
  Result<FederatedDataset> ds = BuildBenchmarkDataset(GetParam(), opt);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(static_cast<int>(ds->n_clients()),
            BenchmarkSuiteInfo()[GetParam()].paper_clients);
  for (const auto& client : ds->clients) {
    EXPECT_GE(client.size(), 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, SuiteSweepTest,
                         ::testing::Range<size_t>(0, 12));

}  // namespace
}  // namespace fedfc::data
