#include "features/feature_engineering.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"
#include "features/feature_selection.h"

namespace fedfc::features {
namespace {

ts::Series TrendingSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec spec;
  spec.length = n;
  spec.level = 5.0;
  spec.trend_slope = 0.01;
  spec.seasonalities = {{24.0, 1.0, 0.0}};
  spec.noise_std = 0.1;
  return data::GenerateSignal(spec, &rng);
}

TEST(SpecTest, TensorRoundTrip) {
  FeatureEngineeringSpec spec;
  spec.n_lags = 5;
  spec.seasonal_periods = {24.0, 168.0};
  spec.include_time_features = false;
  spec.selected_features = {0, 2, 4};
  Result<FeatureEngineeringSpec> back =
      FeatureEngineeringSpec::FromTensor(spec.ToTensor());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->n_lags, 5u);
  EXPECT_EQ(back->seasonal_periods, spec.seasonal_periods);
  EXPECT_FALSE(back->include_time_features);
  EXPECT_EQ(back->selected_features, spec.selected_features);
}

TEST(SpecTest, FromTensorRejectsCorruption) {
  EXPECT_FALSE(FeatureEngineeringSpec::FromTensor({1.0}).ok());
  FeatureEngineeringSpec spec;
  std::vector<double> t = spec.ToTensor();
  t.push_back(9.0);
  EXPECT_FALSE(FeatureEngineeringSpec::FromTensor(t).ok());
}

TEST(SpecTest, FromTensorRejectsHostileCountFields) {
  // Fuzzer-surfaced paths (tests/fuzz/regressions/model_artifact/): every
  // count field is attacker bytes, and casting NaN/huge doubles was UB.
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      FeatureEngineeringSpec::FromTensor({kNaN, 1, 1, 0, 0, 0, 0}).ok());
  EXPECT_FALSE(
      FeatureEngineeringSpec::FromTensor({1e18, 1, 1, 0, 0, 0, 0}).ok());
  // Per-field caps pass but the n_covariates x covariate_lags product
  // would explode the schema width.
  EXPECT_FALSE(
      FeatureEngineeringSpec::FromTensor({4, 1, 1, 1024, 4096, 0, 0}).ok());
  // Non-finite seasonal period.
  EXPECT_FALSE(
      FeatureEngineeringSpec::FromTensor({4, 1, 1, 0, 0, 1, kNaN, 0}).ok());
}

TEST(SchemaTest, NamesMatchConfiguration) {
  FeatureEngineeringSpec spec;
  spec.n_lags = 3;
  spec.seasonal_periods = {24.0};
  std::vector<std::string> names = FeatureSchema(spec);
  // 3 lags + trend + 6 calendar + 2 seasonal = 12.
  EXPECT_EQ(names.size(), 12u);
  EXPECT_EQ(names[0], "lag_1");
  EXPECT_EQ(names[3], "trend");
  EXPECT_EQ(names.back(), "seasonal_0_cos");
}

TEST(EngineerTest, ShapesAndLagContent) {
  ts::Series s = TrendingSeries(200, 1);
  FeatureEngineeringSpec spec;
  spec.n_lags = 4;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  Result<EngineeredData> data = EngineerFeatures(s, spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->x.rows(), 196u);
  EXPECT_EQ(data->x.cols(), 4u);
  // Row r targets index t = r + 4; lag_1 = values[t-1].
  EXPECT_DOUBLE_EQ(data->y[0], s[4]);
  EXPECT_DOUBLE_EQ(data->x(0, 0), s[3]);
  EXPECT_DOUBLE_EQ(data->x(0, 3), s[0]);
}

TEST(EngineerTest, MissingValuesAreInterpolatedFirst) {
  ts::Series s = TrendingSeries(150, 2);
  s[50] = ts::MissingValue();
  FeatureEngineeringSpec spec;
  spec.n_lags = 2;
  Result<EngineeredData> data = EngineerFeatures(s, spec);
  ASSERT_TRUE(data.ok());
  for (size_t r = 0; r < data->x.rows(); ++r) {
    for (size_t c = 0; c < data->x.cols(); ++c) {
      EXPECT_FALSE(std::isnan(data->x(r, c)));
    }
    EXPECT_FALSE(std::isnan(data->y[r]));
  }
}

TEST(EngineerTest, SeasonalFeaturesAreBoundedSinusoids) {
  ts::Series s = TrendingSeries(300, 3);
  FeatureEngineeringSpec spec;
  spec.n_lags = 2;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  spec.seasonal_periods = {24.0};
  Result<EngineeredData> data = EngineerFeatures(s, spec);
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->x.cols(), 4u);
  for (size_t r = 0; r < data->x.rows(); ++r) {
    EXPECT_LE(std::fabs(data->x(r, 2)), 1.0);
    EXPECT_LE(std::fabs(data->x(r, 3)), 1.0);
    // sin^2 + cos^2 = 1.
    EXPECT_NEAR(data->x(r, 2) * data->x(r, 2) + data->x(r, 3) * data->x(r, 3),
                1.0, 1e-9);
  }
}

TEST(EngineerTest, TrendFeatureTracksTrendingTarget) {
  ts::Series s = TrendingSeries(400, 4);
  FeatureEngineeringSpec spec;
  spec.n_lags = 2;
  spec.include_time_features = false;
  Result<EngineeredData> data = EngineerFeatures(s, spec);
  ASSERT_TRUE(data.ok());
  // Column 2 is the trend; it should correlate strongly with y.
  double corr = 0.0;
  {
    std::vector<double> trend_col = data->x.Column(2);
    double mx = 0, my = 0;
    for (size_t i = 0; i < trend_col.size(); ++i) {
      mx += trend_col[i];
      my += data->y[i];
    }
    mx /= static_cast<double>(trend_col.size());
    my /= static_cast<double>(trend_col.size());
    double num = 0, dx = 0, dy = 0;
    for (size_t i = 0; i < trend_col.size(); ++i) {
      num += (trend_col[i] - mx) * (data->y[i] - my);
      dx += (trend_col[i] - mx) * (trend_col[i] - mx);
      dy += (data->y[i] - my) * (data->y[i] - my);
    }
    corr = num / std::sqrt(dx * dy);
  }
  EXPECT_GT(corr, 0.8);
}

TEST(EngineerTest, SelectionSubsetsColumns) {
  ts::Series s = TrendingSeries(200, 5);
  FeatureEngineeringSpec spec;
  spec.n_lags = 4;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  spec.selected_features = {0, 2};
  Result<EngineeredData> data = EngineerFeatures(s, spec);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->x.cols(), 2u);
  EXPECT_EQ(data->feature_names[0], "lag_1");
  EXPECT_EQ(data->feature_names[1], "lag_3");
}

TEST(EngineerTest, RejectsBadSpecs) {
  ts::Series s = TrendingSeries(100, 6);
  FeatureEngineeringSpec no_lags;
  no_lags.n_lags = 0;
  EXPECT_FALSE(EngineerFeatures(s, no_lags).ok());

  FeatureEngineeringSpec oob;
  oob.n_lags = 2;
  oob.selected_features = {999};
  EXPECT_FALSE(EngineerFeatures(s, oob).ok());

  ts::Series tiny({1, 2, 3}, 0, 86400);
  FeatureEngineeringSpec spec;
  spec.n_lags = 4;
  EXPECT_FALSE(EngineerFeatures(tiny, spec).ok());
}

TEST(SelectionTest, ImportancesFavourPredictiveLag) {
  // y depends only on lag_1 => lag_1 importance dominates.
  ts::Series s = TrendingSeries(500, 7);
  FeatureEngineeringSpec spec;
  spec.n_lags = 4;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  Result<EngineeredData> data = EngineerFeatures(s, spec);
  ASSERT_TRUE(data.ok());
  Rng rng(8);
  Result<std::vector<double>> imp = ComputeFeatureImportances(*data, &rng);
  ASSERT_TRUE(imp.ok());
  EXPECT_EQ(imp->size(), 4u);
  EXPECT_GT((*imp)[0], 0.3);  // lag_1 carries most signal on an AR-ish series.
}

TEST(SelectionTest, CoverageKeepsSmallestSufficientSet) {
  // Hand-crafted importances: one dominant feature.
  std::vector<std::vector<double>> imps = {{0.90, 0.06, 0.03, 0.01}};
  Result<std::vector<size_t>> sel = SelectFeatures(imps, {1.0}, 0.95);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 2u);  // 0.90 + 0.06 >= 0.95.
  EXPECT_EQ((*sel)[0], 0u);
  EXPECT_EQ((*sel)[1], 1u);
}

TEST(SelectionTest, WeightsBlendClientViews) {
  // Client A thinks feature 0 matters; client B (heavier) prefers feature 1.
  std::vector<std::vector<double>> imps = {{1.0, 0.0}, {0.0, 1.0}};
  Result<std::vector<size_t>> sel = SelectFeatures(imps, {0.1, 0.9}, 0.6);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ((*sel)[0], 1u);
}

TEST(SelectionTest, FullCoverageKeepsEverything) {
  std::vector<std::vector<double>> imps = {{0.4, 0.3, 0.3}};
  Result<std::vector<size_t>> sel = SelectFeatures(imps, {1.0}, 1.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 3u);
}

TEST(SelectionTest, DegenerateImportancesKeepAll) {
  std::vector<std::vector<double>> imps = {{0.0, 0.0, 0.0}};
  Result<std::vector<size_t>> sel = SelectFeatures(imps, {1.0}, 0.95);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 3u);
}

TEST(SelectionTest, RejectsBadInputs) {
  EXPECT_FALSE(SelectFeatures({}, {}).ok());
  EXPECT_FALSE(SelectFeatures({{1.0}}, {1.0}, 0.0).ok());
  EXPECT_FALSE(SelectFeatures({{1.0}, {1.0, 2.0}}, {1.0, 1.0}, 0.9).ok());
}

}  // namespace
}  // namespace fedfc::features
