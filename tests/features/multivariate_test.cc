#include <cmath>

#include <gtest/gtest.h>

#include "automl/engine.h"
#include "automl/fed_client.h"
#include "core/rng.h"
#include "features/feature_engineering.h"
#include "fl/transport.h"
#include "ts/multi_series.h"

namespace fedfc::features {
namespace {

/// Target driven by the lag-1 of an exogenous channel: y[t] = 2*x[t-1] + e.
ts::MultiSeries DrivenSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> driver(n), target(n);
  for (size_t t = 0; t < n; ++t) {
    driver[t] = rng.Uniform(-1, 1);
    target[t] = (t > 0 ? 2.0 * driver[t - 1] : 0.0) + rng.Normal(0.0, 0.05);
  }
  ts::MultiSeries out;
  out.target = ts::Series(std::move(target), 0, 3600);
  out.covariate_names = {"driver"};
  out.covariates = {ts::Series(std::move(driver), 0, 3600)};
  return out;
}

TEST(MultiSeriesTest, ValidateChecksAlignment) {
  ts::MultiSeries ok = DrivenSeries(50, 1);
  EXPECT_TRUE(ok.Validate().ok());

  ts::MultiSeries bad_len = ok;
  bad_len.covariates[0] = bad_len.covariates[0].Slice(0, 30);
  EXPECT_FALSE(bad_len.Validate().ok());

  ts::MultiSeries bad_axis = ok;
  bad_axis.covariates[0] =
      ts::Series(std::vector<double>(50, 1.0), 999, 3600);
  EXPECT_FALSE(bad_axis.Validate().ok());

  ts::MultiSeries bad_names = ok;
  bad_names.covariate_names.push_back("extra");
  EXPECT_FALSE(bad_names.Validate().ok());
}

TEST(MultiSeriesTest, SlicePreservesAllChannels) {
  ts::MultiSeries m = DrivenSeries(50, 2);
  ts::MultiSeries sub = m.Slice(10, 20);
  EXPECT_EQ(sub.size(), 10u);
  EXPECT_EQ(sub.n_covariates(), 1u);
  EXPECT_DOUBLE_EQ(sub.target[0], m.target[10]);
  EXPECT_DOUBLE_EQ(sub.covariates[0][0], m.covariates[0][10]);
  EXPECT_EQ(sub.target.start_epoch(), m.target.TimestampAt(10));
}

TEST(MultiSeriesTest, SplitIntoClientsKeepsChannels) {
  ts::MultiSeries m = DrivenSeries(100, 3);
  Result<std::vector<ts::MultiSeries>> splits = ts::SplitMultiIntoClients(m, 4);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 4u);
  size_t total = 0;
  for (const auto& s : *splits) {
    EXPECT_TRUE(s.Validate().ok());
    EXPECT_EQ(s.n_covariates(), 1u);
    total += s.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST(MultivariateEngineerTest, SchemaIncludesCovariateLags) {
  FeatureEngineeringSpec spec;
  spec.n_lags = 2;
  spec.n_covariates = 2;
  spec.covariate_lags = 3;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  std::vector<std::string> names = FeatureSchema(spec);
  EXPECT_EQ(names.size(), 2u + 6u);
  EXPECT_EQ(names[2], "cov_0_lag_1");
  EXPECT_EQ(names.back(), "cov_1_lag_3");
}

TEST(MultivariateEngineerTest, SpecTensorRoundTripWithCovariates) {
  FeatureEngineeringSpec spec;
  spec.n_lags = 3;
  spec.n_covariates = 2;
  spec.covariate_lags = 4;
  Result<FeatureEngineeringSpec> back =
      FeatureEngineeringSpec::FromTensor(spec.ToTensor());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->n_covariates, 2u);
  EXPECT_EQ(back->covariate_lags, 4u);
}

TEST(MultivariateEngineerTest, CovariateColumnsCarrySignal) {
  ts::MultiSeries m = DrivenSeries(300, 4);
  FeatureEngineeringSpec spec;
  spec.n_lags = 2;
  spec.n_covariates = 1;
  spec.covariate_lags = 1;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  Result<EngineeredData> data = EngineerFeatures(m, spec);
  ASSERT_TRUE(data.ok()) << data.status();
  // Column 2 = cov_0_lag_1, which drives y: correlation should be ~1.
  std::vector<double> cov_col = data->x.Column(2);
  double num = 0, dx = 0, dy = 0, mx = 0, my = 0;
  for (size_t i = 0; i < cov_col.size(); ++i) {
    mx += cov_col[i];
    my += data->y[i];
  }
  mx /= static_cast<double>(cov_col.size());
  my /= static_cast<double>(cov_col.size());
  for (size_t i = 0; i < cov_col.size(); ++i) {
    num += (cov_col[i] - mx) * (data->y[i] - my);
    dx += (cov_col[i] - mx) * (cov_col[i] - mx);
    dy += (data->y[i] - my) * (data->y[i] - my);
  }
  EXPECT_GT(num / std::sqrt(dx * dy), 0.95);
}

TEST(MultivariateEngineerTest, ChannelCountMismatchRejected) {
  ts::MultiSeries m = DrivenSeries(100, 5);
  FeatureEngineeringSpec spec;
  spec.n_lags = 2;
  spec.n_covariates = 3;  // Input has only 1.
  spec.covariate_lags = 1;
  EXPECT_FALSE(EngineerFeatures(m, spec).ok());
  // Univariate entry point refuses covariate specs outright.
  EXPECT_FALSE(EngineerFeatures(m.target, spec).ok());
}

TEST(MultivariateEngineTest, ExogenousChannelImprovesForecast) {
  // y depends only on the covariate's lag; with the channel the engine
  // should do far better than without.
  ts::MultiSeries m = DrivenSeries(600, 6);
  Result<std::vector<ts::MultiSeries>> splits = ts::SplitMultiIntoClients(m, 3);
  ASSERT_TRUE(splits.ok());

  auto run = [&](size_t n_covariates) {
    std::vector<std::shared_ptr<fl::Client>> clients;
    std::vector<size_t> sizes;
    for (size_t j = 0; j < splits->size(); ++j) {
      automl::ForecastClient::Options opt;
      opt.seed = 10 + j;
      sizes.push_back((*splits)[j].size());
      if (n_covariates > 0) {
        clients.push_back(std::make_shared<automl::ForecastClient>(
            "m" + std::to_string(j), (*splits)[j], opt));
      } else {
        clients.push_back(std::make_shared<automl::ForecastClient>(
            "u" + std::to_string(j), (*splits)[j].target, opt));
      }
    }
    fl::Server server(std::make_unique<fl::InProcessTransport>(clients), sizes);
    automl::EngineOptions opt;
    opt.use_meta_model = false;
    opt.max_iterations = 6;
    opt.time_budget_seconds = 60.0;
    opt.n_covariates = n_covariates;
    opt.covariate_lags = 1;
    opt.seed = 3;
    automl::FedForecasterEngine engine(nullptr, opt);
    Result<automl::EngineReport> report = engine.Run(&server);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? report->test_loss : 1e9;
  };

  double with_cov = run(1);
  double without_cov = run(0);
  EXPECT_LT(with_cov, 0.5 * without_cov);
}

}  // namespace
}  // namespace fedfc::features
