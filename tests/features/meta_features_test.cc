#include "features/meta_features.h"

#include <cmath>
#include <limits>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"

namespace fedfc::features {
namespace {

ts::Series SeasonalSeries(size_t n, double period, uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec spec;
  spec.length = n;
  spec.level = 10.0;
  spec.seasonalities = {{period, 3.0, 0.0}};
  spec.noise_std = 0.3;
  return data::GenerateSignal(spec, &rng);
}

TEST(ClientMetaFeaturesTest, BasicFieldsPopulated) {
  ts::Series s = SeasonalSeries(600, 24, 1);
  ClientMetaFeatures m = ComputeClientMetaFeatures(s);
  EXPECT_DOUBLE_EQ(m.n_instances, 600.0);
  EXPECT_DOUBLE_EQ(m.missing_pct, 0.0);
  EXPECT_DOUBLE_EQ(m.sampling_rate, 1.0);  // Daily sampling.
  EXPECT_GE(m.fractal_dimension, 1.0);
  EXPECT_LE(m.fractal_dimension, 2.0);
  EXPECT_EQ(m.histogram.size(), kHistogramBins);
}

TEST(ClientMetaFeaturesTest, DetectsSeasonality) {
  ts::Series s = SeasonalSeries(1024, 32, 2);
  ClientMetaFeatures m = ComputeClientMetaFeatures(s);
  ASSERT_GT(m.n_seasonal_components, 0.0);
  EXPECT_NEAR(m.seasonal_components.front().period, 32.0, 4.0);
  EXPECT_GT(m.max_seasonal_period, 0.0);
}

TEST(ClientMetaFeaturesTest, MissingFractionReflected) {
  Rng rng(3);
  data::SignalSpec spec;
  spec.length = 500;
  spec.missing_fraction = 0.1;
  ts::Series s = data::GenerateSignal(spec, &rng);
  ClientMetaFeatures m = ComputeClientMetaFeatures(s);
  EXPECT_NEAR(m.missing_pct, 0.1, 0.05);
}

TEST(ClientMetaFeaturesTest, RandomWalkNotStationaryButDiffIs) {
  // The 5% ADF test has a 5% false-positive rate on unit roots by design, so
  // assert the majority verdict over seeds rather than any single draw.
  int non_stationary = 0, diff1_stationary = 0;
  constexpr int kSeeds = 10;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed);
    data::SignalSpec spec;
    spec.length = 800;
    spec.random_walk_std = 1.0;
    spec.noise_std = 0.01;
    ts::Series s = data::GenerateSignal(spec, &rng);
    ClientMetaFeatures m = ComputeClientMetaFeatures(s);
    if (m.target_stationary == 0.0) ++non_stationary;
    if (m.stationary_after_diff1 == 1.0) ++diff1_stationary;
  }
  EXPECT_GE(non_stationary, 8);
  EXPECT_EQ(diff1_stationary, kSeeds);
}

TEST(ClientMetaFeaturesTest, TensorRoundTrip) {
  ts::Series s = SeasonalSeries(600, 24, 5);
  ClientMetaFeatures m = ComputeClientMetaFeatures(s);
  std::vector<double> tensor = m.ToTensor();
  Result<ClientMetaFeatures> back = ClientMetaFeatures::FromTensor(tensor);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->n_instances, m.n_instances);
  EXPECT_DOUBLE_EQ(back->skewness, m.skewness);
  EXPECT_EQ(back->seasonal_components.size(), m.seasonal_components.size());
  EXPECT_EQ(back->histogram, m.histogram);
}

TEST(ClientMetaFeaturesTest, FromTensorRejectsCorruption) {
  EXPECT_FALSE(ClientMetaFeatures::FromTensor({1.0, 2.0}).ok());
  ts::Series s = SeasonalSeries(400, 16, 6);
  std::vector<double> tensor = ComputeClientMetaFeatures(s).ToTensor();
  tensor.pop_back();
  EXPECT_FALSE(ClientMetaFeatures::FromTensor(tensor).ok());
}

TEST(ClientMetaFeaturesTest, FromTensorRejectsHostileCountFields) {
  // The seasonal-block and histogram counts are wire data; a NaN or huge
  // double there was cast straight to size_t before CheckedCount (the
  // crasher lives in tests/fuzz/regressions/model_artifact/).
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> tensor(20, 0.5);
  tensor[16] = kNaN;  // Seasonal-component count.
  EXPECT_FALSE(ClientMetaFeatures::FromTensor(tensor).ok());
  tensor[16] = 1e18;
  EXPECT_FALSE(ClientMetaFeatures::FromTensor(tensor).ok());
  tensor[16] = 0.0;
  tensor[19] = kNaN;  // Histogram bin count.
  EXPECT_FALSE(ClientMetaFeatures::FromTensor(tensor).ok());
}

TEST(ClientMetaFeaturesTest, TinySeriesDoesNotCrash) {
  ts::Series s({1.0, 2.0, 3.0}, 0, 86400);
  ClientMetaFeatures m = ComputeClientMetaFeatures(s);
  EXPECT_DOUBLE_EQ(m.n_instances, 3.0);
  EXPECT_EQ(m.histogram.size(), kHistogramBins);
}

std::vector<ClientMetaFeatures> MakeClientSet(size_t n_clients, uint64_t seed) {
  std::vector<ClientMetaFeatures> out;
  for (size_t j = 0; j < n_clients; ++j) {
    out.push_back(ComputeClientMetaFeatures(SeasonalSeries(512, 24, seed + j)));
  }
  return out;
}

TEST(AggregateTest, VectorMatchesSchemaWidth) {
  std::vector<ClientMetaFeatures> clients = MakeClientSet(4, 10);
  Result<AggregatedMetaFeatures> agg =
      AggregateMetaFeatures(clients, {512, 512, 512, 512});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->values.size(), AggregatedMetaFeatures::FeatureNames().size());
  EXPECT_DOUBLE_EQ(agg->values[0], 4.0);  // n_clients.
}

TEST(AggregateTest, InstanceSumAndStats) {
  std::vector<ClientMetaFeatures> clients = MakeClientSet(2, 20);
  clients[0].n_instances = 100;
  clients[1].n_instances = 300;
  Result<AggregatedMetaFeatures> agg = AggregateMetaFeatures(clients, {100, 300});
  ASSERT_TRUE(agg.ok());
  const auto& names = AggregatedMetaFeatures::FeatureNames();
  auto at = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return agg->values[i];
    }
    ADD_FAILURE() << "no such feature " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(at("instances_sum"), 400.0);
  EXPECT_DOUBLE_EQ(at("instances_avg"), 200.0);
  EXPECT_DOUBLE_EQ(at("instances_min"), 100.0);
  EXPECT_DOUBLE_EQ(at("instances_max"), 300.0);
}

TEST(AggregateTest, StationarityEntropyZeroWhenUnanimous) {
  std::vector<ClientMetaFeatures> clients = MakeClientSet(4, 30);
  for (auto& c : clients) c.target_stationary = 1.0;
  Result<AggregatedMetaFeatures> agg =
      AggregateMetaFeatures(clients, {1, 1, 1, 1});
  ASSERT_TRUE(agg.ok());
  const auto& names = AggregatedMetaFeatures::FeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "target_stationarity_entropy") {
      EXPECT_DOUBLE_EQ(agg->values[i], 0.0);
    }
  }
}

TEST(AggregateTest, StationarityEntropyMaxWhenSplit) {
  std::vector<ClientMetaFeatures> clients = MakeClientSet(4, 40);
  clients[0].target_stationary = 1.0;
  clients[1].target_stationary = 1.0;
  clients[2].target_stationary = 0.0;
  clients[3].target_stationary = 0.0;
  Result<AggregatedMetaFeatures> agg =
      AggregateMetaFeatures(clients, {1, 1, 1, 1});
  ASSERT_TRUE(agg.ok());
  const auto& names = AggregatedMetaFeatures::FeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "target_stationarity_entropy") {
      EXPECT_DOUBLE_EQ(agg->values[i], 1.0);  // Maximum binary entropy.
    }
  }
}

TEST(AggregateTest, GlobalLagAndSeasonalQuantities) {
  std::vector<ClientMetaFeatures> clients = MakeClientSet(3, 50);
  clients[0].n_significant_lags = 3;
  clients[1].n_significant_lags = 8;
  clients[2].n_significant_lags = 5;
  clients[1].max_significant_lag = 12;
  Result<AggregatedMetaFeatures> agg = AggregateMetaFeatures(clients, {1, 1, 1});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->global_lag_count, 8u);
  EXPECT_GE(agg->global_max_lag, 12u);
  // Shared 24-sample seasonality should be merged into one global period.
  ASSERT_FALSE(agg->global_seasonal_periods.empty());
  EXPECT_NEAR(agg->global_seasonal_periods.front(), 24.0, 4.0);
}

TEST(AggregateTest, KlStatsSmallForIdenticalClients) {
  std::vector<ClientMetaFeatures> clients = MakeClientSet(3, 60);
  Result<AggregatedMetaFeatures> agg = AggregateMetaFeatures(clients, {1, 1, 1});
  ASSERT_TRUE(agg.ok());
  const auto& names = AggregatedMetaFeatures::FeatureNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "kl_avg") {
      EXPECT_LT(agg->values[i], 0.5);
    }
  }
}

TEST(AggregateTest, RejectsBadInputs) {
  EXPECT_FALSE(AggregateMetaFeatures({}, {}).ok());
  std::vector<ClientMetaFeatures> clients = MakeClientSet(2, 70);
  EXPECT_FALSE(AggregateMetaFeatures(clients, {1.0}).ok());
}

}  // namespace
}  // namespace fedfc::features
