#include "fl/payload.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::fl {
namespace {

TEST(PayloadTest, SetAndGetAllTypes) {
  Payload p;
  p.SetDouble("loss", 0.25);
  p.SetInt("round", 7);
  p.SetString("name", "client-3");
  p.SetTensor("params", {1.0, 2.0, 3.0});

  EXPECT_DOUBLE_EQ(*p.GetDouble("loss"), 0.25);
  EXPECT_EQ(*p.GetInt("round"), 7);
  EXPECT_EQ(*p.GetString("name"), "client-3");
  EXPECT_EQ(p.GetTensor("params")->size(), 3u);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.Has("loss"));
  EXPECT_FALSE(p.Has("missing"));
}

TEST(PayloadTest, MissingKeyIsNotFound) {
  Payload p;
  EXPECT_EQ(p.GetDouble("x").status().code(), StatusCode::kNotFound);
}

TEST(PayloadTest, TypeMismatchIsInvalidArgument) {
  Payload p;
  p.SetDouble("x", 1.0);
  EXPECT_EQ(p.GetInt("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetString("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetTensor("x").status().code(), StatusCode::kInvalidArgument);
}

TEST(PayloadTest, KeysAreSorted) {
  Payload p;
  p.SetDouble("zebra", 1);
  p.SetDouble("alpha", 2);
  std::vector<std::string> keys = p.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zebra");
}

TEST(PayloadTest, SerializeRoundTrip) {
  Payload p;
  p.SetDouble("d", -1.5e-300);
  p.SetInt("i", -42);
  p.SetString("s", "hello world");
  p.SetTensor("t", {0.0, 1e300, -3.7});
  std::vector<uint8_t> bytes = p.Serialize();
  Result<Payload> back = Payload::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(PayloadTest, EmptyPayloadRoundTrip) {
  Payload p;
  Result<Payload> back = Payload::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(PayloadTest, DeserializeRejectsTruncation) {
  Payload p;
  p.SetTensor("t", {1, 2, 3});
  std::vector<uint8_t> bytes = p.Serialize();
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    std::vector<uint8_t> truncated(
        bytes.begin(), bytes.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Payload::Deserialize(truncated).ok()) << "cut " << cut;
  }
}

TEST(PayloadTest, DeserializeRejectsTrailingBytes) {
  Payload p;
  p.SetInt("i", 1);
  std::vector<uint8_t> bytes = p.Serialize();
  bytes.push_back(0);
  EXPECT_FALSE(Payload::Deserialize(bytes).ok());
}

TEST(PayloadTest, DeserializeRejectsUnknownTag) {
  Payload p;
  p.SetInt("i", 1);
  std::vector<uint8_t> bytes = p.Serialize();
  // Tag byte follows 4-byte count + 4-byte key length + 1-byte key.
  bytes[4 + 4 + 1] = 99;
  EXPECT_FALSE(Payload::Deserialize(bytes).ok());
}

// Property: random payloads always round-trip.
class PayloadFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PayloadFuzzTest, RandomRoundTrip) {
  Rng rng(GetParam());
  Payload p;
  size_t n_entries = rng.Index(10) + 1;
  for (size_t e = 0; e < n_entries; ++e) {
    std::string key = "k" + std::to_string(e);
    switch (rng.Index(4)) {
      case 0:
        p.SetDouble(key, rng.Normal(0, 1e6));
        break;
      case 1:
        p.SetInt(key, rng.Int(-1000000, 1000000));
        break;
      case 2: {
        std::string s;
        for (size_t i = 0; i < rng.Index(50); ++i) {
          s.push_back(static_cast<char>(rng.Int(32, 126)));
        }
        p.SetString(key, s);
        break;
      }
      default: {
        std::vector<double> t(rng.Index(100));
        for (double& v : t) v = rng.Normal();
        p.SetTensor(key, t);
      }
    }
  }
  Result<Payload> back = Payload::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

// Adversarial corpus: Deserialize must return a typed error — never crash,
// hang, or allocate proportionally to an attacker-declared length — for any
// input. These buffers are the wire-facing decoder's threat model now that
// payloads arrive from remote workers (net::TcpTransport).

TEST(PayloadAdversarialTest, OverflowingTensorLengthDoesNotAllocate) {
  // count=1, key "t", tensor tag, declared length 0xFFFFFFFF (= 32 GiB of
  // doubles) with no element bytes behind it. Must fail before the resize.
  std::vector<uint8_t> bytes = {
      1, 0, 0, 0,               // count
      1, 0, 0, 0, 't',          // key
      3,                        // Tag::kTensor
      0xFF, 0xFF, 0xFF, 0xFF,   // declared length
  };
  Result<Payload> r = Payload::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("tensor length"), std::string::npos);
}

TEST(PayloadAdversarialTest, OverflowingStringAndKeyLengthsRejected) {
  std::vector<uint8_t> huge_string = {
      1, 0, 0, 0, 1, 0, 0, 0, 's',
      2,                        // Tag::kString
      0xFF, 0xFF, 0xFF, 0x7F,   // declared length ~2 GiB
  };
  EXPECT_EQ(Payload::Deserialize(huge_string).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<uint8_t> huge_key = {
      1, 0, 0, 0,
      0xFF, 0xFF, 0xFF, 0x7F,   // key length ~2 GiB
  };
  EXPECT_EQ(Payload::Deserialize(huge_key).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PayloadAdversarialTest, OverflowingEntryCountRejected) {
  // count=0xFFFFFFFF with a nearly-empty buffer: the per-entry loop must not
  // spin 4 billion times accumulating error-free empty entries.
  std::vector<uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  Result<Payload> r = Payload::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("entry count"), std::string::npos);
}

TEST(PayloadAdversarialTest, DuplicateKeysRejected) {
  Payload p;
  p.SetInt("k", 1);
  std::vector<uint8_t> one = p.Serialize();
  // Splice the single entry in twice and fix up the count. (Built with
  // push_back: GCC 12 emits false-positive -Warray-bounds on vector::insert
  // here.)
  std::vector<uint8_t> bytes = {2, 0, 0, 0};
  for (int rep = 0; rep < 2; ++rep) {
    for (size_t i = 4; i < one.size(); ++i) bytes.push_back(one[i]);
  }
  Result<Payload> r = Payload::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("duplicate key"), std::string::npos);
}

TEST(PayloadAdversarialTest, TruncationCorpusNeverCrashes) {
  Payload p;
  p.SetDouble("d", 3.14);
  p.SetInt("i", -9);
  p.SetString("s", "abcdefgh");
  p.SetTensor("t", {1.0, 2.0, 3.0, 4.0});
  std::vector<uint8_t> bytes = p.Serialize();
  // Every proper prefix must produce a typed error (entries are consumed
  // greedily, so a prefix can never be a valid payload plus nothing).
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    Result<Payload> r = Payload::Deserialize(cut);
    EXPECT_FALSE(r.ok()) << "prefix length " << keep;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << "prefix length " << keep;
  }
}

TEST(PayloadAdversarialTest, BitFlipCorpusNeverCrashes) {
  Payload p;
  p.SetDouble("loss", 0.5);
  p.SetString("algo", "theta");
  p.SetTensor("weights", {0.1, 0.2, 0.3});
  const std::vector<uint8_t> bytes = p.Serialize();
  // Flip every bit of every byte, one at a time. The decode may legitimately
  // succeed (e.g. a flipped double mantissa) but must never crash, and a
  // failure must be a typed InvalidArgument.
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      std::vector<uint8_t> mutated = bytes;
      mutated[i] = static_cast<uint8_t>(mutated[i] ^ (1u << b));
      Result<Payload> r = Payload::Deserialize(mutated);
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
            << "byte " << i << " bit " << b;
      }
    }
  }
}

TEST(PayloadErrorTest, MissingKeyListsAvailableKeys) {
  Payload p;
  p.SetDouble("alpha", 1.0);
  p.SetTensor("beta", {1.0, 2.0});
  Result<double> missing = p.GetDouble("gamma");
  ASSERT_FALSE(missing.ok());
  std::string message = missing.status().ToString();
  EXPECT_NE(message.find("gamma"), std::string::npos);
  EXPECT_NE(message.find("alpha"), std::string::npos);
  EXPECT_NE(message.find("beta"), std::string::npos);
}

TEST(PayloadErrorTest, TypeMismatchNamesActualType) {
  Payload p;
  p.SetString("name", "x");
  p.SetInt("count", 3);
  Result<double> as_double = p.GetDouble("name");
  ASSERT_FALSE(as_double.ok());
  EXPECT_NE(as_double.status().ToString().find("string"), std::string::npos);
  Result<std::vector<double>> as_tensor = p.GetTensor("count");
  ASSERT_FALSE(as_tensor.ok());
  EXPECT_NE(as_tensor.status().ToString().find("int"), std::string::npos);
}

}  // namespace
}  // namespace fedfc::fl
