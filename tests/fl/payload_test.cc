#include "fl/payload.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::fl {
namespace {

TEST(PayloadTest, SetAndGetAllTypes) {
  Payload p;
  p.SetDouble("loss", 0.25);
  p.SetInt("round", 7);
  p.SetString("name", "client-3");
  p.SetTensor("params", {1.0, 2.0, 3.0});

  EXPECT_DOUBLE_EQ(*p.GetDouble("loss"), 0.25);
  EXPECT_EQ(*p.GetInt("round"), 7);
  EXPECT_EQ(*p.GetString("name"), "client-3");
  EXPECT_EQ(p.GetTensor("params")->size(), 3u);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.Has("loss"));
  EXPECT_FALSE(p.Has("missing"));
}

TEST(PayloadTest, MissingKeyIsNotFound) {
  Payload p;
  EXPECT_EQ(p.GetDouble("x").status().code(), StatusCode::kNotFound);
}

TEST(PayloadTest, TypeMismatchIsInvalidArgument) {
  Payload p;
  p.SetDouble("x", 1.0);
  EXPECT_EQ(p.GetInt("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetString("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetTensor("x").status().code(), StatusCode::kInvalidArgument);
}

TEST(PayloadTest, KeysAreSorted) {
  Payload p;
  p.SetDouble("zebra", 1);
  p.SetDouble("alpha", 2);
  std::vector<std::string> keys = p.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");
  EXPECT_EQ(keys[1], "zebra");
}

TEST(PayloadTest, SerializeRoundTrip) {
  Payload p;
  p.SetDouble("d", -1.5e-300);
  p.SetInt("i", -42);
  p.SetString("s", "hello world");
  p.SetTensor("t", {0.0, 1e300, -3.7});
  std::vector<uint8_t> bytes = p.Serialize();
  Result<Payload> back = Payload::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(PayloadTest, EmptyPayloadRoundTrip) {
  Payload p;
  Result<Payload> back = Payload::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(PayloadTest, DeserializeRejectsTruncation) {
  Payload p;
  p.SetTensor("t", {1, 2, 3});
  std::vector<uint8_t> bytes = p.Serialize();
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    std::vector<uint8_t> truncated(
        bytes.begin(), bytes.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Payload::Deserialize(truncated).ok()) << "cut " << cut;
  }
}

TEST(PayloadTest, DeserializeRejectsTrailingBytes) {
  Payload p;
  p.SetInt("i", 1);
  std::vector<uint8_t> bytes = p.Serialize();
  bytes.push_back(0);
  EXPECT_FALSE(Payload::Deserialize(bytes).ok());
}

TEST(PayloadTest, DeserializeRejectsUnknownTag) {
  Payload p;
  p.SetInt("i", 1);
  std::vector<uint8_t> bytes = p.Serialize();
  // Tag byte follows 4-byte count + 4-byte key length + 1-byte key.
  bytes[4 + 4 + 1] = 99;
  EXPECT_FALSE(Payload::Deserialize(bytes).ok());
}

// Property: random payloads always round-trip.
class PayloadFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PayloadFuzzTest, RandomRoundTrip) {
  Rng rng(GetParam());
  Payload p;
  size_t n_entries = rng.Index(10) + 1;
  for (size_t e = 0; e < n_entries; ++e) {
    std::string key = "k" + std::to_string(e);
    switch (rng.Index(4)) {
      case 0:
        p.SetDouble(key, rng.Normal(0, 1e6));
        break;
      case 1:
        p.SetInt(key, rng.Int(-1000000, 1000000));
        break;
      case 2: {
        std::string s;
        for (size_t i = 0; i < rng.Index(50); ++i) {
          s.push_back(static_cast<char>(rng.Int(32, 126)));
        }
        p.SetString(key, s);
        break;
      }
      default: {
        std::vector<double> t(rng.Index(100));
        for (double& v : t) v = rng.Normal();
        p.SetTensor(key, t);
      }
    }
  }
  Result<Payload> back = Payload::Deserialize(p.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PayloadFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

TEST(PayloadErrorTest, MissingKeyListsAvailableKeys) {
  Payload p;
  p.SetDouble("alpha", 1.0);
  p.SetTensor("beta", {1.0, 2.0});
  Result<double> missing = p.GetDouble("gamma");
  ASSERT_FALSE(missing.ok());
  std::string message = missing.status().ToString();
  EXPECT_NE(message.find("gamma"), std::string::npos);
  EXPECT_NE(message.find("alpha"), std::string::npos);
  EXPECT_NE(message.find("beta"), std::string::npos);
}

TEST(PayloadErrorTest, TypeMismatchNamesActualType) {
  Payload p;
  p.SetString("name", "x");
  p.SetInt("count", 3);
  Result<double> as_double = p.GetDouble("name");
  ASSERT_FALSE(as_double.ok());
  EXPECT_NE(as_double.status().ToString().find("string"), std::string::npos);
  Result<std::vector<double>> as_tensor = p.GetTensor("count");
  ASSERT_FALSE(as_tensor.ok());
  EXPECT_NE(as_tensor.status().ToString().find("int"), std::string::npos);
}

}  // namespace
}  // namespace fedfc::fl
