#include "fl/aggregation.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/linear/lasso.h"
#include "ml/tree/gbdt.h"

namespace fedfc::fl {
namespace {

struct Problem {
  Matrix x;
  std::vector<double> y;
};

Problem MakeProblem(double slope, uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = Matrix(100, 1);
  p.y.resize(100);
  for (size_t i = 0; i < 100; ++i) {
    p.x(i, 0) = rng.Uniform(-2, 2);
    p.y[i] = slope * p.x(i, 0);
  }
  return p;
}

TEST(AggregateModelsTest, LinearModelsFedAvg) {
  // Two clients with different slopes; equal weights -> averaged slope.
  Problem p1 = MakeProblem(2.0, 1);
  Problem p2 = MakeProblem(4.0, 2);
  std::vector<std::unique_ptr<ml::Regressor>> models;
  ml::LassoRegressor::Config cfg;
  cfg.alpha = 1e-5;
  for (const Problem* p : {&p1, &p2}) {
    auto model = std::make_unique<ml::LassoRegressor>(cfg);
    Rng rng(3);
    ASSERT_TRUE(model->Fit(p->x, p->y, &rng).ok());
    models.push_back(std::move(model));
  }
  Result<std::unique_ptr<ml::Regressor>> global =
      AggregateModels(std::move(models), {0.5, 0.5});
  ASSERT_TRUE(global.ok());
  Matrix probe({{1.0}});
  EXPECT_NEAR((*global)->Predict(probe)[0], 3.0, 0.1);
}

TEST(AggregateModelsTest, WeightsBiasTheAverage) {
  Problem p1 = MakeProblem(2.0, 4);
  Problem p2 = MakeProblem(4.0, 5);
  std::vector<std::unique_ptr<ml::Regressor>> models;
  ml::LassoRegressor::Config cfg;
  cfg.alpha = 1e-5;
  for (const Problem* p : {&p1, &p2}) {
    auto model = std::make_unique<ml::LassoRegressor>(cfg);
    Rng rng(6);
    ASSERT_TRUE(model->Fit(p->x, p->y, &rng).ok());
    models.push_back(std::move(model));
  }
  Result<std::unique_ptr<ml::Regressor>> global =
      AggregateModels(std::move(models), {1.0, 0.0});
  ASSERT_TRUE(global.ok());
  Matrix probe({{1.0}});
  EXPECT_NEAR((*global)->Predict(probe)[0], 2.0, 0.1);
}

TEST(AggregateModelsTest, TreeModelsBecomeEnsemble) {
  Problem p1 = MakeProblem(2.0, 7);
  Problem p2 = MakeProblem(4.0, 8);
  std::vector<std::unique_ptr<ml::Regressor>> models;
  ml::GbdtConfig cfg;
  cfg.n_estimators = 20;
  for (const Problem* p : {&p1, &p2}) {
    auto model = std::make_unique<ml::GbdtRegressor>(cfg);
    Rng rng(9);
    ASSERT_TRUE(model->Fit(p->x, p->y, &rng).ok());
    models.push_back(std::move(model));
  }
  Result<std::unique_ptr<ml::Regressor>> global =
      AggregateModels(std::move(models), {0.5, 0.5});
  ASSERT_TRUE(global.ok());
  EXPECT_NE((*global)->Name().find("Ensemble"), std::string::npos);
  Matrix probe({{1.0}});
  EXPECT_NEAR((*global)->Predict(probe)[0], 3.0, 0.5);
}

TEST(AggregateModelsTest, RejectsBadInputs) {
  EXPECT_FALSE(AggregateModels({}, {}).ok());
}

TEST(EnsembleRegressorTest, WeightedAverageOfMembers) {
  Problem p1 = MakeProblem(1.0, 10);
  ml::LassoRegressor::Config cfg;
  cfg.alpha = 1e-5;
  auto m1 = std::make_unique<ml::LassoRegressor>(cfg);
  auto m2 = std::make_unique<ml::LassoRegressor>(cfg);
  Rng rng(11);
  ASSERT_TRUE(m1->Fit(p1.x, p1.y, &rng).ok());
  Problem p2 = MakeProblem(3.0, 12);
  ASSERT_TRUE(m2->Fit(p2.x, p2.y, &rng).ok());

  EnsembleRegressor ensemble;
  ensemble.Add(std::move(m1), 3.0);
  ensemble.Add(std::move(m2), 1.0);
  EXPECT_EQ(ensemble.size(), 2u);
  Matrix probe({{1.0}});
  // (3 * 1.0 + 1 * 3.0) / 4 = 1.5.
  EXPECT_NEAR(ensemble.Predict(probe)[0], 1.5, 0.05);
}

TEST(EnsembleRegressorTest, FitIsFailedPrecondition) {
  EnsembleRegressor ensemble;
  Matrix x(2, 1);
  Rng rng(13);
  EXPECT_EQ(ensemble.Fit(x, {1, 2}, &rng).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EnsembleRegressorTest, CopyIsDeep) {
  Problem p = MakeProblem(2.0, 14);
  ml::LassoRegressor::Config cfg;
  cfg.alpha = 1e-5;
  auto m = std::make_unique<ml::LassoRegressor>(cfg);
  Rng rng(15);
  ASSERT_TRUE(m->Fit(p.x, p.y, &rng).ok());
  EnsembleRegressor ensemble;
  ensemble.Add(std::move(m), 1.0);
  EnsembleRegressor copy = ensemble;
  Matrix probe({{1.0}});
  EXPECT_DOUBLE_EQ(copy.Predict(probe)[0], ensemble.Predict(probe)[0]);
}

}  // namespace
}  // namespace fedfc::fl
