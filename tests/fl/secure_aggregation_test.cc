#include "fl/secure_aggregation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::fl {
namespace {

std::vector<std::vector<double>> RandomUpdates(size_t n_clients, size_t dim,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> updates(n_clients);
  for (auto& u : updates) {
    u.resize(dim);
    for (double& v : u) v = rng.Normal(0.0, 2.0);
  }
  return updates;
}

TEST(SecureAggregationTest, MasksCancelInTheSum) {
  constexpr size_t kClients = 5, kDim = 32;
  SecureAggregator agg(kClients, 99);
  auto updates = RandomUpdates(kClients, kDim, 1);

  std::vector<std::vector<double>> masked;
  std::vector<double> expected(kDim, 0.0);
  for (size_t c = 0; c < kClients; ++c) {
    masked.push_back(agg.Mask(c, updates[c]));
    for (size_t k = 0; k < kDim; ++k) expected[k] += updates[c][k];
  }
  Result<std::vector<double>> sum = SecureAggregator::SumMasked(masked);
  ASSERT_TRUE(sum.ok());
  for (size_t k = 0; k < kDim; ++k) {
    EXPECT_NEAR((*sum)[k], expected[k], 1e-6) << "dim " << k;
  }
}

TEST(SecureAggregationTest, IndividualMaskedUpdateLooksRandom) {
  SecureAggregator agg(4, 7);
  std::vector<double> update(16, 1.0);
  std::vector<double> masked = agg.Mask(0, update);
  // The mask amplitude (~1e6) swamps the signal: no masked entry should be
  // anywhere near the raw value.
  size_t near_raw = 0;
  for (double v : masked) {
    if (std::fabs(v - 1.0) < 100.0) ++near_raw;
  }
  EXPECT_EQ(near_raw, 0u);
}

TEST(SecureAggregationTest, TwoClientsMaskSymmetrically) {
  SecureAggregator agg(2, 3);
  std::vector<double> zero(8, 0.0);
  std::vector<double> m0 = agg.Mask(0, zero);
  std::vector<double> m1 = agg.Mask(1, zero);
  for (size_t k = 0; k < 8; ++k) {
    EXPECT_DOUBLE_EQ(m0[k], -m1[k]);  // Pure opposite masks.
  }
}

TEST(SecureAggregationTest, PairMaskDeterministicPerSession) {
  SecureAggregator a(4, 11), b(4, 11), c(4, 12);
  std::vector<double> ma = a.PairMask(0, 2, 8);
  std::vector<double> mb = b.PairMask(0, 2, 8);
  std::vector<double> mc = c.PairMask(0, 2, 8);
  EXPECT_EQ(ma, mb);   // Same session -> same mask.
  EXPECT_NE(ma, mc);   // Different session -> different mask.
  EXPECT_NE(ma, a.PairMask(1, 2, 8));  // Different pair -> different mask.
}

TEST(SecureAggregationTest, MissingClientBreaksTheSum) {
  // Without dropout recovery a missing client leaves masks uncancelled —
  // the simulation documents this limitation explicitly.
  SecureAggregator agg(3, 5);
  auto updates = RandomUpdates(3, 8, 2);
  std::vector<std::vector<double>> masked = {agg.Mask(0, updates[0]),
                                             agg.Mask(1, updates[1])};
  Result<std::vector<double>> sum = SecureAggregator::SumMasked(masked);
  ASSERT_TRUE(sum.ok());
  double expected0 = updates[0][0] + updates[1][0];
  EXPECT_GT(std::fabs((*sum)[0] - expected0), 1.0);
}

TEST(SecureAggregationTest, SumMaskedValidatesInput) {
  EXPECT_FALSE(SecureAggregator::SumMasked({}).ok());
  EXPECT_FALSE(SecureAggregator::SumMasked({{1.0}, {1.0, 2.0}}).ok());
}

TEST(SecureAggregationTest, WeightedFedAvgThroughMasking) {
  // End-to-end: clients send alpha_j-weighted parameters through masking;
  // the server's masked sum equals the FedAvg result.
  constexpr size_t kClients = 4, kDim = 6;
  SecureAggregator agg(kClients, 21);
  auto params = RandomUpdates(kClients, kDim, 3);
  std::vector<double> weights = {0.4, 0.3, 0.2, 0.1};

  std::vector<std::vector<double>> masked;
  std::vector<double> fedavg(kDim, 0.0);
  for (size_t c = 0; c < kClients; ++c) {
    std::vector<double> weighted(kDim);
    for (size_t k = 0; k < kDim; ++k) {
      weighted[k] = weights[c] * params[c][k];
      fedavg[k] += weighted[k];
    }
    masked.push_back(agg.Mask(c, weighted));
  }
  Result<std::vector<double>> sum = SecureAggregator::SumMasked(masked);
  ASSERT_TRUE(sum.ok());
  for (size_t k = 0; k < kDim; ++k) {
    EXPECT_NEAR((*sum)[k], fedavg[k], 1e-7);
  }
}

}  // namespace
}  // namespace fedfc::fl
