// Regression tests for the streaming-window exception-safety fix in
// fl/server.cc (found while annotating the window state for clang Thread
// Safety Analysis): the pooled round submits tasks that capture the
// RunRound stack frame by reference, and an exception surfacing through
// future::get used to unwind that frame while later tasks were still
// queued or running — a use-after-scope the sanitizer jobs catch (this
// suite is part of fedfc_concurrency_tests, so it runs under TSan too).
// The fix drains every in-flight task before rethrowing; these tests pin
// that the exception still propagates and that the server (and its pool)
// stay usable afterwards.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "fl/round.h"
#include "fl/server.h"
#include "fl/transport.h"

namespace fedfc::fl {
namespace {

/// Client that answers any task with its value after a short stall, so a
/// pooled round reliably has tasks still executing when an earlier slot's
/// exception unwinds.
class SlowEchoClient : public Client {
 public:
  SlowEchoClient(std::string id, double value) : id_(std::move(id)), value_(value) {}

  std::string id() const override { return id_; }
  size_t num_examples() const override { return 10; }

  Result<Payload> Handle(const std::string& /*task*/,
                         const Payload& /*request*/) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Payload reply;
    reply.SetDouble("value", value_);
    return reply;
  }

 private:
  std::string id_;
  double value_;
};

/// Decorator that *throws* (rather than returning a non-OK Result) for one
/// client index, a bounded number of times. Throwing transports are the
/// degenerate case the retry policy cannot absorb — a bad_alloc in payload
/// serialization behaves exactly like this.
class ThrowingTransport : public Transport {
 public:
  ThrowingTransport(std::unique_ptr<Transport> inner, size_t throw_at,
                    size_t times)
      : inner_(std::move(inner)), throw_at_(throw_at), throws_left_(times) {}

  size_t num_clients() const override { return inner_->num_clients(); }

  Result<Payload> Execute(size_t client_index, const std::string& task,
                          const Payload& request) override {
    if (client_index == throw_at_) {
      bool do_throw = false;
      {
        MutexLock lock(mu_);
        if (throws_left_ > 0) {
          --throws_left_;
          do_throw = true;
        }
      }
      if (do_throw) throw std::runtime_error("injected transport exception");
    }
    return inner_->Execute(client_index, task, request);
  }

  TransportStats stats() const override { return inner_->stats(); }

 private:
  std::unique_ptr<Transport> inner_;
  size_t throw_at_;
  mutable Mutex mu_;
  size_t throws_left_ FEDFC_GUARDED_BY(mu_);
};

std::unique_ptr<Server> MakeThrowingServer(size_t n, size_t throw_at,
                                           size_t times, size_t num_threads) {
  std::vector<std::shared_ptr<Client>> clients;
  clients.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    clients.push_back(std::make_shared<SlowEchoClient>(
        "c" + std::to_string(j), static_cast<double>(j + 1)));
  }
  auto transport = std::make_unique<ThrowingTransport>(
      std::make_unique<InProcessTransport>(std::move(clients)), throw_at,
      times);
  return std::make_unique<Server>(std::move(transport),
                                  std::vector<size_t>(n, 10), num_threads);
}

/// Runs one buffered round and reports whether it returned OK; lets
/// EXPECT_THROW consume the [[nodiscard]] Result without discarding it.
bool RunOneRound(Server& server, const RoundSpec& spec) {
  Result<RoundResult> result = server.RunRound(spec);
  return result.ok();
}

TEST(RoundExceptionTest, PooledRoundDrainsInFlightTasksBeforeUnwinding) {
  // Throw at slot 2 of 32: by the time slot 2's future rethrows, the
  // 2×pool-size window has many later tasks queued or running against the
  // RunRound frame. Pre-fix, unwinding here left those tasks chasing
  // dangling stack references.
  auto server = MakeThrowingServer(32, 2, 1, 4);
  RoundSpec spec("echo", Payload());
  bool ok = false;
  EXPECT_THROW(ok = RunOneRound(*server, spec), std::runtime_error);
  EXPECT_FALSE(ok);

  // The pool and transport survived the unwind: the next round (the
  // injected throw is spent) completes over all 32 clients.
  Result<RoundResult> retry = server->RunRound(spec);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->replies.size(), 32u);
  EXPECT_EQ(retry->trace.ok_clients, 32u);
}

TEST(RoundExceptionTest, SequentialRoundPropagatesTheSameException) {
  auto server = MakeThrowingServer(8, 3, 1, 1);
  RoundSpec spec("echo", Payload());
  bool ok = false;
  EXPECT_THROW(ok = RunOneRound(*server, spec), std::runtime_error);
  EXPECT_FALSE(ok);

  Result<RoundResult> retry = server->RunRound(spec);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->replies.size(), 8u);
}

TEST(RoundExceptionTest, RepeatedThrowsNeverWedgeThePool) {
  // Every round throws until the budget is spent; each unwind must leave
  // the pool reusable for the next attempt.
  auto server = MakeThrowingServer(16, 0, 3, 4);
  RoundSpec spec("echo", Payload());
  for (int attempt = 0; attempt < 3; ++attempt) {
    bool ok = false;
    EXPECT_THROW(ok = RunOneRound(*server, spec), std::runtime_error);
    EXPECT_FALSE(ok);
  }
  Result<RoundResult> final_round = server->RunRound(spec);
  ASSERT_TRUE(final_round.ok());
  EXPECT_EQ(final_round->replies.size(), 16u);
}

}  // namespace
}  // namespace fedfc::fl
