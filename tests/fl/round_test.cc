#include "fl/round.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fl/server.h"
#include "fl/transport.h"

namespace fedfc::fl {
namespace {

/// Test client: echoes a scalar; `fail_all` makes every task error.
class EchoClient : public Client {
 public:
  EchoClient(std::string id, double value, size_t n, bool fail_all = false)
      : id_(std::move(id)), value_(value), n_(n), fail_all_(fail_all) {}

  std::string id() const override { return id_; }
  size_t num_examples() const override { return n_; }

  Result<Payload> Handle(const std::string& task,
                         const Payload& request) override {
    (void)request;
    if (fail_all_ || task == "fail") return Status::Internal("induced failure");
    Payload reply;
    reply.SetDouble("value", value_);
    return reply;
  }

 private:
  std::string id_;
  double value_;
  size_t n_;
  bool fail_all_;
};

std::unique_ptr<Server> MakeServer(std::vector<double> values,
                                   std::vector<size_t> sizes,
                                   size_t num_threads = 1,
                                   std::vector<bool> fail = {}) {
  std::vector<std::shared_ptr<Client>> clients;
  for (size_t j = 0; j < values.size(); ++j) {
    clients.push_back(std::make_shared<EchoClient>(
        "c" + std::to_string(j), values[j], sizes[j],
        !fail.empty() && fail[j]));
  }
  return std::make_unique<Server>(
      std::make_unique<InProcessTransport>(std::move(clients)), sizes,
      num_threads);
}

/// Decorator that fails the first `n_failures` attempts against each client,
/// then lets everything through — exercises the retry path deterministically.
class FailFirstAttemptsTransport : public Transport {
 public:
  FailFirstAttemptsTransport(std::unique_ptr<Transport> inner, size_t n_failures)
      : inner_(std::move(inner)),
        attempts_(inner_->num_clients(), 0),
        n_failures_(n_failures) {}

  size_t num_clients() const override { return inner_->num_clients(); }

  Result<Payload> Execute(size_t client_index, const std::string& task,
                          const Payload& request) override {
    if (attempts_[client_index]++ < n_failures_) {
      injected_timeouts_.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded("simulated drop");
    }
    return inner_->Execute(client_index, task, request);
  }

  /// Injected drops never reach the inner transport, so they must be added
  /// here — and as `timeouts`, since the injected status is DeadlineExceeded.
  TransportStats stats() const override {
    TransportStats stats = inner_->stats();
    stats.timeouts += injected_timeouts_.load(std::memory_order_relaxed);
    return stats;
  }

 private:
  std::unique_ptr<Transport> inner_;
  std::vector<size_t> attempts_;  ///< Per-client, so no cross-client races.
  size_t n_failures_;
  std::atomic<size_t> injected_timeouts_{0};
};

TEST(SampleParticipantsTest, FullParticipationTakesEveryone) {
  RoundSpec spec("any", Payload());
  std::vector<size_t> sampled = SampleParticipants(spec, 7);
  ASSERT_EQ(sampled.size(), 7u);
  for (size_t j = 0; j < 7; ++j) EXPECT_EQ(sampled[j], j);
}

TEST(SampleParticipantsTest, FractionSamplesCeilAndIsSeedDeterministic) {
  RoundSpec spec("any", Payload());
  spec.policy.participation_fraction = 0.5;
  spec.sampling_seed = 42;
  std::vector<size_t> a = SampleParticipants(spec, 9);
  std::vector<size_t> b = SampleParticipants(spec, 9);
  EXPECT_EQ(a, b);                 // Same seed, same subset.
  EXPECT_EQ(a.size(), 5u);         // ceil(0.5 * 9).
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  std::set<size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
  for (size_t j : a) EXPECT_LT(j, 9u);
}

TEST(SampleParticipantsTest, TinyFractionStillSamplesOneClient) {
  RoundSpec spec("any", Payload());
  spec.policy.participation_fraction = 1e-6;
  EXPECT_EQ(SampleParticipants(spec, 10).size(), 1u);
}

TEST(RoundTest, DefaultPolicyMatchesBroadcastBitForBit) {
  // The legacy Broadcast and a default-policy RunRound must agree byte-for-
  // byte at every thread count (the PR's compatibility contract).
  for (size_t num_threads : {1u, 4u}) {
    auto a = MakeServer({1.5, 2.5, 3.5}, {30, 10, 20}, num_threads);
    auto b = MakeServer({1.5, 2.5, 3.5}, {30, 10, 20}, num_threads);
    Result<std::vector<ClientReply>> broadcast = a->Broadcast("any", Payload());
    Result<RoundResult> round = b->RunRound(RoundSpec("any", Payload()));
    ASSERT_TRUE(broadcast.ok());
    ASSERT_TRUE(round.ok());
    ASSERT_EQ(broadcast->size(), round->replies.size());
    for (size_t j = 0; j < broadcast->size(); ++j) {
      EXPECT_EQ((*broadcast)[j].client_index, round->replies[j].client_index);
      EXPECT_DOUBLE_EQ((*broadcast)[j].weight, round->replies[j].weight);
      EXPECT_EQ((*broadcast)[j].payload.Serialize(),
                round->replies[j].payload.Serialize());
    }
    // Identical transport traffic on both paths.
    TransportStats sa = a->transport_stats();
    TransportStats sb = b->transport_stats();
    EXPECT_EQ(sa.messages, sb.messages);
    EXPECT_EQ(sa.bytes_to_clients, sb.bytes_to_clients);
    EXPECT_EQ(sa.bytes_to_server, sb.bytes_to_server);
  }
}

TEST(RoundTest, InvalidParticipationFractionRejected) {
  auto server = MakeServer({1.0}, {10});
  RoundSpec spec("any", Payload());
  spec.policy.participation_fraction = 0.0;
  EXPECT_FALSE(server->RunRound(spec).ok());
  spec.policy.participation_fraction = 1.5;
  EXPECT_FALSE(server->RunRound(spec).ok());
}

TEST(RoundTest, SampledSubsetRenormalizesWeights) {
  auto server = MakeServer({0.0, 1.0, 2.0, 3.0, 4.0, 5.0},
                           {10, 20, 30, 40, 50, 60});
  RoundSpec spec("any", Payload());
  spec.policy.participation_fraction = 0.5;
  spec.sampling_seed = 7;
  Result<RoundResult> round = server->RunRound(spec);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->replies.size(), 3u);
  EXPECT_EQ(round->trace.sampled_clients, 3u);
  EXPECT_EQ(round->trace.messages, 3u);  // Unsampled clients see no traffic.
  double total = 0.0;
  for (const auto& r : round->replies) total += r.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Each weight is |D_j| over the sampled total, not the population total.
  size_t sampled_examples = 0;
  for (const auto& r : round->replies) {
    sampled_examples += (r.client_index + 1) * 10;
  }
  for (const auto& r : round->replies) {
    EXPECT_NEAR(r.weight,
                static_cast<double>((r.client_index + 1) * 10) /
                    static_cast<double>(sampled_examples),
                1e-12);
  }
}

TEST(RoundTest, AllClientsFailingIsError) {
  auto server = MakeServer({1.0, 2.0}, {10, 10});
  Result<RoundResult> round = server->RunRound(RoundSpec("fail", Payload()));
  ASSERT_FALSE(round.ok());
  EXPECT_NE(round.status().ToString().find("all clients failed"),
            std::string::npos);
}

TEST(RoundTest, RetriedClientContributesExactlyOnce) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes = {30, 10};
  for (size_t j = 0; j < sizes.size(); ++j) {
    clients.push_back(std::make_shared<EchoClient>(
        "c" + std::to_string(j), static_cast<double>(j + 1), sizes[j]));
  }
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  Server server(std::make_unique<FailFirstAttemptsTransport>(std::move(inner),
                                                             /*n_failures=*/1),
                sizes);
  RoundSpec spec("any", Payload());
  spec.policy.max_retries = 2;
  Result<RoundResult> round = server.RunRound(spec);
  ASSERT_TRUE(round.ok());
  // Every client dropped once, retried, and landed exactly one reply with
  // the full-participation weights.
  ASSERT_EQ(round->replies.size(), 2u);
  EXPECT_NEAR(round->replies[0].weight, 0.75, 1e-12);
  EXPECT_NEAR(round->replies[1].weight, 0.25, 1e-12);
  EXPECT_EQ(round->trace.retries, 2u);
  ASSERT_EQ(round->outcomes.size(), 2u);
  for (const auto& outcome : round->outcomes) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.retries, 1u);
  }
  // The trace separates transport-level timeouts (one dropped attempt per
  // client) from other failures, and counts attempts — not the post-retry
  // verdicts, which are all successes here.
  EXPECT_EQ(round->trace.transport_timeouts, 2u);
  EXPECT_EQ(round->trace.transport_failures, 0u);
  EXPECT_EQ(round->trace.failed_clients, 0u);
}

TEST(RoundTest, RetryBudgetExhaustedMarksClientFailed) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes = {10, 10};
  for (size_t j = 0; j < sizes.size(); ++j) {
    clients.push_back(std::make_shared<EchoClient>(
        "c" + std::to_string(j), 1.0, sizes[j]));
  }
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  // Three failures per client but only one retry: every attempt fails.
  Server server(std::make_unique<FailFirstAttemptsTransport>(std::move(inner),
                                                             /*n_failures=*/3),
                sizes);
  RoundSpec spec("any", Payload());
  spec.policy.max_retries = 1;
  EXPECT_FALSE(server.RunRound(spec).ok());
}

TEST(RoundTest, MinSuccessFractionRejectsTooPartialRounds) {
  // Client 1 of 3 fails; 2/3 succeed.
  auto ok_server = MakeServer({1.0, 2.0, 3.0}, {10, 10, 10}, 1,
                              {false, true, false});
  RoundSpec spec("any", Payload());
  spec.policy.min_success_fraction = 0.6;
  Result<RoundResult> round = ok_server->RunRound(spec);
  ASSERT_TRUE(round.ok());  // 2/3 >= 0.6.
  EXPECT_EQ(round->trace.ok_clients, 2u);
  EXPECT_EQ(round->trace.failed_clients, 1u);

  auto strict_server = MakeServer({1.0, 2.0, 3.0}, {10, 10, 10}, 1,
                                  {false, true, false});
  spec.policy.min_success_fraction = 0.9;
  Result<RoundResult> strict = strict_server->RunRound(spec);
  ASSERT_FALSE(strict.ok());  // 2/3 < 0.9.
  EXPECT_NE(strict.status().ToString().find("below success threshold"),
            std::string::npos);
}

TEST(RoundTest, TraceAccountsMessagesAndBytes) {
  auto server = MakeServer({1.0, 2.0, 3.0}, {10, 10, 10});
  Result<RoundResult> round = server->RunRound(RoundSpec("any", Payload()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->trace.sampled_clients, 3u);
  EXPECT_EQ(round->trace.ok_clients, 3u);
  EXPECT_EQ(round->trace.failed_clients, 0u);
  EXPECT_EQ(round->trace.messages, 3u);
  EXPECT_GT(round->trace.bytes_to_clients, 0u);
  EXPECT_GT(round->trace.bytes_to_server, 0u);
  EXPECT_GE(round->trace.wall_seconds, 0.0);
  // A second round accumulates fresh deltas, not the running totals.
  Result<RoundResult> second = server->RunRound(RoundSpec("any", Payload()));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->trace.messages, 3u);
}

TEST(RoundTest, FailedExecutesCountInTransportStats) {
  auto server = MakeServer({1.0, 2.0, 3.0}, {10, 10, 10}, 1,
                           {false, true, false});
  Result<RoundResult> round = server->RunRound(RoundSpec("any", Payload()));
  ASSERT_TRUE(round.ok());
  // A handler error is a generic failure, not a timeout: the two counters
  // are disjoint, in the stats and in the round's trace deltas.
  EXPECT_EQ(server->transport_stats().failures, 1u);
  EXPECT_EQ(server->transport_stats().timeouts, 0u);
  EXPECT_EQ(round->trace.transport_failures, 1u);
  EXPECT_EQ(round->trace.transport_timeouts, 0u);
}

TEST(RoundTest, TimedOutHandlerCountsAsTimeout) {
  // A client whose handler itself returns DeadlineExceeded lands in
  // `timeouts`, keeping the counters disjoint end to end.
  class SlowClient : public Client {
   public:
    std::string id() const override { return "slow"; }
    size_t num_examples() const override { return 10; }
    Result<Payload> Handle(const std::string&, const Payload&) override {
      return Status::DeadlineExceeded("client too slow");
    }
  };
  std::vector<std::shared_ptr<Client>> clients = {
      std::make_shared<EchoClient>("ok", 1.0, 10),
      std::make_shared<SlowClient>()};
  Server server(std::make_unique<InProcessTransport>(std::move(clients)),
                {10, 10});
  Result<RoundResult> round = server.RunRound(RoundSpec("any", Payload()));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(server.transport_stats().timeouts, 1u);
  EXPECT_EQ(server.transport_stats().failures, 0u);
  EXPECT_EQ(round->trace.transport_timeouts, 1u);
  EXPECT_EQ(round->trace.transport_failures, 0u);
}

TEST(RoundTest, FlakyTransportReportsInjectedFailures) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes;
  for (int j = 0; j < 20; ++j) {
    clients.push_back(std::make_shared<EchoClient>("c" + std::to_string(j),
                                                   1.0, 10));
    sizes.push_back(10);
  }
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  Server server(std::make_unique<FlakyTransport>(std::move(inner), 0.4, 7),
                sizes);
  Result<RoundResult> round = server.RunRound(RoundSpec("any", Payload()));
  ASSERT_TRUE(round.ok());
  // With rate 0.4 over 20 clients some injections are certain for this seed;
  // the decorator must surface them even though the inner transport never
  // saw those calls.
  EXPECT_GT(server.transport_stats().failures, 0u);
  EXPECT_EQ(server.transport_stats().failures, round->trace.failed_clients);
}

}  // namespace
}  // namespace fedfc::fl
