#include "fl/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fl/transport.h"

namespace fedfc::fl {
namespace {

/// Test client: echoes a scalar equal to its configured value and its id.
/// `delay` stalls the reply so concurrent broadcasts complete out of
/// submission order; `fail_tasks` makes the named task error deterministically.
class EchoClient : public Client {
 public:
  EchoClient(std::string id, double value, size_t n,
             std::chrono::milliseconds delay = std::chrono::milliseconds(0),
             bool fail_all = false)
      : id_(std::move(id)), value_(value), n_(n), delay_(delay),
        fail_all_(fail_all) {}

  std::string id() const override { return id_; }
  size_t num_examples() const override { return n_; }

  Result<Payload> Handle(const std::string& task,
                         const Payload& request) override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    if (fail_all_ || task == "fail") return Status::Internal("induced failure");
    Payload reply;
    reply.SetDouble("value", value_);
    reply.SetTensor("vec", {value_, 2.0 * value_});
    if (request.Has("echo")) {
      reply.SetString("echo", *request.GetString("echo"));
    }
    return reply;
  }

 private:
  std::string id_;
  double value_;
  size_t n_;
  std::chrono::milliseconds delay_;
  bool fail_all_;
};

std::unique_ptr<Server> MakeServer(std::vector<double> values,
                                   std::vector<size_t> sizes) {
  std::vector<std::shared_ptr<Client>> clients;
  for (size_t j = 0; j < values.size(); ++j) {
    clients.push_back(
        std::make_shared<EchoClient>("c" + std::to_string(j), values[j], sizes[j]));
  }
  return std::make_unique<Server>(
      std::make_unique<InProcessTransport>(std::move(clients)), sizes);
}

TEST(ServerTest, BroadcastReachesAllClients) {
  auto server = MakeServer({1.0, 2.0, 3.0}, {10, 10, 10});
  Payload request;
  request.SetString("echo", "hi");
  Result<std::vector<ClientReply>> replies = server->Broadcast("any", request);
  ASSERT_TRUE(replies.ok());
  EXPECT_EQ(replies->size(), 3u);
  for (const auto& r : *replies) {
    EXPECT_EQ(*r.payload.GetString("echo"), "hi");
    EXPECT_NEAR(r.weight, 1.0 / 3.0, 1e-12);
  }
}

TEST(ServerTest, WeightsFollowClientSizes) {
  auto server = MakeServer({1.0, 2.0}, {30, 10});
  Result<std::vector<ClientReply>> replies =
      server->Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  EXPECT_NEAR((*replies)[0].weight, 0.75, 1e-12);
  EXPECT_NEAR((*replies)[1].weight, 0.25, 1e-12);
}

TEST(ServerTest, AggregateScalarIsWeightedMean) {
  auto server = MakeServer({1.0, 5.0}, {30, 10});
  Result<std::vector<ClientReply>> replies =
      server->Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  Result<double> agg = Server::AggregateScalar(*replies, "value");
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR(*agg, 0.75 * 1.0 + 0.25 * 5.0, 1e-12);
}

TEST(ServerTest, AggregateTensorIsElementwiseWeightedMean) {
  auto server = MakeServer({1.0, 3.0}, {10, 10});
  Result<std::vector<ClientReply>> replies =
      server->Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  Result<std::vector<double>> agg = Server::AggregateTensor(*replies, "vec");
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR((*agg)[0], 2.0, 1e-12);
  EXPECT_NEAR((*agg)[1], 4.0, 1e-12);
}

TEST(ServerTest, AllClientsFailingIsError) {
  auto server = MakeServer({1.0, 2.0}, {10, 10});
  EXPECT_FALSE(server->Broadcast("fail", Payload()).ok());
}

TEST(ServerTest, TransportStatsAccumulate) {
  auto server = MakeServer({1.0}, {10});
  EXPECT_EQ(server->transport_stats().messages, 0u);
  ASSERT_TRUE(server->Broadcast("any", Payload()).ok());
  EXPECT_EQ(server->transport_stats().messages, 1u);
  EXPECT_GT(server->transport_stats().bytes_to_server, 0u);
}

TEST(ConcurrentServerTest, RepliesArriveInClientIndexOrder) {
  // Client 0 is the slowest and client 7 the fastest, so with 4 workers the
  // completion order is roughly reversed; the gathered replies must still be
  // index-ordered with the right values.
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes;
  constexpr size_t kN = 8;
  for (size_t j = 0; j < kN; ++j) {
    clients.push_back(std::make_shared<EchoClient>(
        "c" + std::to_string(j), static_cast<double>(j), 10,
        std::chrono::milliseconds(2 * (kN - j))));
    sizes.push_back(10);
  }
  Server server(std::make_unique<InProcessTransport>(std::move(clients)), sizes,
                /*num_threads=*/4);
  EXPECT_EQ(server.num_threads(), 4u);
  Result<std::vector<ClientReply>> replies = server.Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  ASSERT_EQ(replies->size(), kN);
  for (size_t j = 0; j < kN; ++j) {
    EXPECT_EQ((*replies)[j].client_index, j);
    EXPECT_DOUBLE_EQ(*(*replies)[j].payload.GetDouble("value"),
                     static_cast<double>(j));
    EXPECT_NEAR((*replies)[j].weight, 1.0 / kN, 1e-12);
  }
}

TEST(ConcurrentServerTest, MatchesSequentialBroadcast) {
  auto make = [](size_t num_threads) {
    std::vector<std::shared_ptr<Client>> clients;
    std::vector<size_t> sizes = {30, 10, 20, 40};
    for (size_t j = 0; j < sizes.size(); ++j) {
      clients.push_back(std::make_shared<EchoClient>(
          "c" + std::to_string(j), 1.5 * static_cast<double>(j + 1), sizes[j]));
    }
    return std::make_unique<Server>(
        std::make_unique<InProcessTransport>(std::move(clients)), sizes,
        num_threads);
  };
  auto sequential = make(1);
  auto parallel = make(4);
  Result<std::vector<ClientReply>> a = sequential->Broadcast("any", Payload());
  Result<std::vector<ClientReply>> b = parallel->Broadcast("any", Payload());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t j = 0; j < a->size(); ++j) {
    EXPECT_EQ((*a)[j].client_index, (*b)[j].client_index);
    EXPECT_DOUBLE_EQ((*a)[j].weight, (*b)[j].weight);
    EXPECT_DOUBLE_EQ(*(*a)[j].payload.GetDouble("value"),
                     *(*b)[j].payload.GetDouble("value"));
  }
  Result<double> agg_a = Server::AggregateScalar(*a, "value");
  Result<double> agg_b = Server::AggregateScalar(*b, "value");
  ASSERT_TRUE(agg_a.ok());
  ASSERT_TRUE(agg_b.ok());
  EXPECT_DOUBLE_EQ(*agg_a, *agg_b);
}

TEST(ConcurrentServerTest, PartialParticipationStillAggregates) {
  // Client 2 fails deterministically; the others answer under 4 workers.
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes = {10, 20, 30, 40};
  for (size_t j = 0; j < sizes.size(); ++j) {
    clients.push_back(std::make_shared<EchoClient>(
        "c" + std::to_string(j), static_cast<double>(j), sizes[j],
        std::chrono::milliseconds(1), /*fail_all=*/j == 2));
  }
  Server server(std::make_unique<InProcessTransport>(std::move(clients)), sizes,
                /*num_threads=*/4);
  Result<std::vector<ClientReply>> replies = server.Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  ASSERT_EQ(replies->size(), 3u);
  EXPECT_EQ((*replies)[0].client_index, 0u);
  EXPECT_EQ((*replies)[1].client_index, 1u);
  EXPECT_EQ((*replies)[2].client_index, 3u);
  double total = 0.0;
  for (const auto& r : *replies) total += r.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Weights renormalize over the 70 responding examples.
  EXPECT_NEAR((*replies)[2].weight, 40.0 / 70.0, 1e-12);
  Result<double> agg = Server::AggregateScalar(*replies, "value");
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR(*agg, (10.0 * 0 + 20.0 * 1 + 40.0 * 3) / 70.0, 1e-12);
}

TEST(ConcurrentServerTest, AllClientsFailingIsStillError) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes = {10, 10, 10};
  for (size_t j = 0; j < sizes.size(); ++j) {
    clients.push_back(std::make_shared<EchoClient>("c" + std::to_string(j), 1.0,
                                                   10));
  }
  Server server(std::make_unique<InProcessTransport>(std::move(clients)), sizes,
                /*num_threads=*/3);
  EXPECT_FALSE(server.Broadcast("fail", Payload()).ok());
}

TEST(ConcurrentServerTest, TransportStatsCountEveryMessage) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes;
  constexpr size_t kN = 16;
  for (size_t j = 0; j < kN; ++j) {
    clients.push_back(
        std::make_shared<EchoClient>("c" + std::to_string(j), 1.0, 10));
    sizes.push_back(10);
  }
  Server server(std::make_unique<InProcessTransport>(std::move(clients)), sizes,
                /*num_threads=*/4);
  ASSERT_TRUE(server.Broadcast("any", Payload()).ok());
  ASSERT_TRUE(server.Broadcast("any", Payload()).ok());
  TransportStats stats = server.transport_stats();
  EXPECT_EQ(stats.messages, 2 * kN);
  EXPECT_GT(stats.bytes_to_server, 0u);
}

TEST(ConcurrentServerTest, SetNumThreadsSwitchesModes) {
  auto server = MakeServer({1.0, 2.0}, {10, 10});
  EXPECT_EQ(server->num_threads(), 1u);
  server->set_num_threads(4);
  EXPECT_EQ(server->num_threads(), 4u);
  ASSERT_TRUE(server->Broadcast("any", Payload()).ok());
  server->set_num_threads(1);
  EXPECT_EQ(server->num_threads(), 1u);
  ASSERT_TRUE(server->Broadcast("any", Payload()).ok());
}

TEST(TransportTest, OutOfRangeClientIndex) {
  std::vector<std::shared_ptr<Client>> clients;
  clients.push_back(std::make_shared<EchoClient>("c0", 1.0, 10));
  InProcessTransport transport(std::move(clients));
  EXPECT_FALSE(transport.Execute(5, "any", Payload()).ok());
}

TEST(FlakyTransportTest, PartialFailuresTolerated) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes;
  for (int j = 0; j < 10; ++j) {
    clients.push_back(std::make_shared<EchoClient>("c" + std::to_string(j),
                                                   static_cast<double>(j), 10));
    sizes.push_back(10);
  }
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  Server server(std::make_unique<FlakyTransport>(std::move(inner), 0.4, 7), sizes);
  Result<std::vector<ClientReply>> replies = server.Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  EXPECT_LT(replies->size(), 10u);  // Some failed...
  EXPECT_GE(replies->size(), 1u);   // ...but not all.
  // Remaining weights renormalize to 1.
  double total = 0.0;
  for (const auto& r : *replies) total += r.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FlakyTransportTest, ZeroRateNeverFails) {
  std::vector<std::shared_ptr<Client>> clients;
  clients.push_back(std::make_shared<EchoClient>("c0", 1.0, 10));
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  FlakyTransport transport(std::move(inner), 0.0, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(transport.Execute(0, "any", Payload()).ok());
  }
}

}  // namespace
}  // namespace fedfc::fl
