#include "fl/server.h"

#include <gtest/gtest.h>

#include "fl/transport.h"

namespace fedfc::fl {
namespace {

/// Test client: echoes a scalar equal to its configured value and its id.
class EchoClient : public Client {
 public:
  EchoClient(std::string id, double value, size_t n)
      : id_(std::move(id)), value_(value), n_(n) {}

  std::string id() const override { return id_; }
  size_t num_examples() const override { return n_; }

  Result<Payload> Handle(const std::string& task,
                         const Payload& request) override {
    if (task == "fail") return Status::Internal("induced failure");
    Payload reply;
    reply.SetDouble("value", value_);
    reply.SetTensor("vec", {value_, 2.0 * value_});
    if (request.Has("echo")) {
      reply.SetString("echo", *request.GetString("echo"));
    }
    return reply;
  }

 private:
  std::string id_;
  double value_;
  size_t n_;
};

std::unique_ptr<Server> MakeServer(std::vector<double> values,
                                   std::vector<size_t> sizes) {
  std::vector<std::shared_ptr<Client>> clients;
  for (size_t j = 0; j < values.size(); ++j) {
    clients.push_back(
        std::make_shared<EchoClient>("c" + std::to_string(j), values[j], sizes[j]));
  }
  return std::make_unique<Server>(
      std::make_unique<InProcessTransport>(std::move(clients)), sizes);
}

TEST(ServerTest, BroadcastReachesAllClients) {
  auto server = MakeServer({1.0, 2.0, 3.0}, {10, 10, 10});
  Payload request;
  request.SetString("echo", "hi");
  Result<std::vector<ClientReply>> replies = server->Broadcast("any", request);
  ASSERT_TRUE(replies.ok());
  EXPECT_EQ(replies->size(), 3u);
  for (const auto& r : *replies) {
    EXPECT_EQ(*r.payload.GetString("echo"), "hi");
    EXPECT_NEAR(r.weight, 1.0 / 3.0, 1e-12);
  }
}

TEST(ServerTest, WeightsFollowClientSizes) {
  auto server = MakeServer({1.0, 2.0}, {30, 10});
  Result<std::vector<ClientReply>> replies =
      server->Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  EXPECT_NEAR((*replies)[0].weight, 0.75, 1e-12);
  EXPECT_NEAR((*replies)[1].weight, 0.25, 1e-12);
}

TEST(ServerTest, AggregateScalarIsWeightedMean) {
  auto server = MakeServer({1.0, 5.0}, {30, 10});
  Result<std::vector<ClientReply>> replies =
      server->Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  Result<double> agg = Server::AggregateScalar(*replies, "value");
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR(*agg, 0.75 * 1.0 + 0.25 * 5.0, 1e-12);
}

TEST(ServerTest, AggregateTensorIsElementwiseWeightedMean) {
  auto server = MakeServer({1.0, 3.0}, {10, 10});
  Result<std::vector<ClientReply>> replies =
      server->Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  Result<std::vector<double>> agg = Server::AggregateTensor(*replies, "vec");
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR((*agg)[0], 2.0, 1e-12);
  EXPECT_NEAR((*agg)[1], 4.0, 1e-12);
}

TEST(ServerTest, AllClientsFailingIsError) {
  auto server = MakeServer({1.0, 2.0}, {10, 10});
  EXPECT_FALSE(server->Broadcast("fail", Payload()).ok());
}

TEST(ServerTest, TransportStatsAccumulate) {
  auto server = MakeServer({1.0}, {10});
  EXPECT_EQ(server->transport_stats().messages, 0u);
  ASSERT_TRUE(server->Broadcast("any", Payload()).ok());
  EXPECT_EQ(server->transport_stats().messages, 1u);
  EXPECT_GT(server->transport_stats().bytes_to_server, 0u);
}

TEST(TransportTest, OutOfRangeClientIndex) {
  std::vector<std::shared_ptr<Client>> clients;
  clients.push_back(std::make_shared<EchoClient>("c0", 1.0, 10));
  InProcessTransport transport(std::move(clients));
  EXPECT_FALSE(transport.Execute(5, "any", Payload()).ok());
}

TEST(FlakyTransportTest, PartialFailuresTolerated) {
  std::vector<std::shared_ptr<Client>> clients;
  std::vector<size_t> sizes;
  for (int j = 0; j < 10; ++j) {
    clients.push_back(std::make_shared<EchoClient>("c" + std::to_string(j),
                                                   static_cast<double>(j), 10));
    sizes.push_back(10);
  }
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  Server server(std::make_unique<FlakyTransport>(std::move(inner), 0.4, 7), sizes);
  Result<std::vector<ClientReply>> replies = server.Broadcast("any", Payload());
  ASSERT_TRUE(replies.ok());
  EXPECT_LT(replies->size(), 10u);  // Some failed...
  EXPECT_GE(replies->size(), 1u);   // ...but not all.
  // Remaining weights renormalize to 1.
  double total = 0.0;
  for (const auto& r : *replies) total += r.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FlakyTransportTest, ZeroRateNeverFails) {
  std::vector<std::shared_ptr<Client>> clients;
  clients.push_back(std::make_shared<EchoClient>("c0", 1.0, 10));
  auto inner = std::make_unique<InProcessTransport>(std::move(clients));
  FlakyTransport transport(std::move(inner), 0.0, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(transport.Execute(0, "any", Payload()).ok());
  }
}

}  // namespace
}  // namespace fedfc::fl
