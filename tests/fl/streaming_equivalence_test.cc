/// Property tests for the streaming reply pipeline: consumer-based
/// aggregation must be observably identical to the legacy buffered
/// RoundResult path across seeded federation shapes, failure patterns, and
/// thread counts — the bit-identity contract the O(1)-memory refactor rides
/// on. Flaky-transport comparisons hold the Execute call order fixed
/// (sequential servers, same seed): FlakyTransport's shared RNG assigns
/// failures by call order, so only an order-preserving pair of runs sees
/// the same fault pattern.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "fl/aggregation.h"
#include "fl/round.h"
#include "fl/server.h"
#include "fl/transport.h"

namespace fedfc::fl {
namespace {

/// Replies with a scalar under "value" and a tensor under "params", both
/// fixed at construction; `fail` makes every task error.
class VectorClient : public Client {
 public:
  VectorClient(std::string id, size_t n, double value,
               std::vector<double> tensor, bool fail)
      : id_(std::move(id)),
        n_(n),
        value_(value),
        tensor_(std::move(tensor)),
        fail_(fail) {}

  std::string id() const override { return id_; }
  size_t num_examples() const override { return n_; }

  Result<Payload> Handle(const std::string& task,
                         const Payload& request) override {
    (void)task;
    (void)request;
    if (fail_) return Status::Internal("induced failure");
    Payload reply;
    reply.SetDouble("value", value_);
    reply.SetTensor("params", tensor_);
    return reply;
  }

 private:
  std::string id_;
  size_t n_;
  double value_;
  std::vector<double> tensor_;
  bool fail_;
};

/// One seeded federation shape: client count, sizes, reply values, and a
/// failure pattern all derive from the seed, so two Make() calls with the
/// same seed build bit-identical fleets.
struct FederationShape {
  std::vector<size_t> sizes;
  std::vector<double> values;
  std::vector<std::vector<double>> tensors;
  std::vector<bool> fail;

  static FederationShape Make(uint64_t seed, bool with_failures) {
    Rng rng(seed);
    FederationShape shape;
    const size_t n_clients = 2 + rng.Index(9);  // 2..10 clients.
    const size_t dim = 1 + rng.Index(6);        // 1..6 tensor elements.
    for (size_t j = 0; j < n_clients; ++j) {
      shape.sizes.push_back(20 + rng.Index(500));
      shape.values.push_back(rng.Uniform(-50.0, 50.0));
      std::vector<double> tensor(dim);
      for (double& v : tensor) v = rng.Uniform(-10.0, 10.0);
      shape.tensors.push_back(std::move(tensor));
      // Never fail every client: index 0 always answers.
      shape.fail.push_back(with_failures && j > 0 && rng.Bernoulli(0.3));
    }
    return shape;
  }

  [[nodiscard]] std::unique_ptr<Server> MakeServer(size_t num_threads) const {
    std::vector<std::shared_ptr<Client>> clients;
    for (size_t j = 0; j < sizes.size(); ++j) {
      clients.push_back(std::make_shared<VectorClient>(
          "c" + std::to_string(j), sizes[j], values[j], tensors[j], fail[j]));
    }
    return std::make_unique<Server>(
        std::make_unique<InProcessTransport>(std::move(clients)), sizes,
        num_threads);
  }
};

/// Records the exact consumed sequence: indices, raw weights, payload bytes.
class RecordingConsumer : public ReplyConsumer {
 public:
  struct Entry {
    size_t client_index;
    double weight;
    std::vector<uint8_t> payload_bytes;
  };

  Status Consume(ClientReply&& r) override {
    entries_.push_back({r.client_index, r.weight, r.payload.Serialize()});
    return Status::OK();
  }

  Status Finish() override {
    ++finish_calls_;
    return Status::OK();
  }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] size_t finish_calls() const { return finish_calls_; }

 private:
  std::vector<Entry> entries_;
  size_t finish_calls_ = 0;
};

/// Folds "value" and "params" with the streaming accumulators, raw weights.
class FoldingConsumer : public ReplyConsumer {
 public:
  Status Consume(ClientReply&& r) override {
    FEDFC_ASSIGN_OR_RETURN(double v, r.payload.GetDouble("value"));
    scalar_.Add(r.weight, v);
    FEDFC_ASSIGN_OR_RETURN(std::vector<double> t, r.payload.GetTensor("params"));
    return tensor_.Add(r.weight, t);
  }

  Status Finish() override { return Status::OK(); }

  [[nodiscard]] Result<double> ScalarMean() const { return scalar_.Mean(); }
  [[nodiscard]] Result<std::vector<double>> TensorMean() const {
    return tensor_.Mean();
  }

 private:
  ScalarAccumulator scalar_;
  TensorAccumulator tensor_;
};

RoundSpec PermissiveSpec() {
  RoundSpec spec("any", Payload());
  spec.policy.min_success_fraction = 0.2;
  spec.policy.max_retries = 0;
  return spec;
}

TEST(StreamingEquivalenceTest, ConsumedSequenceIsAscendingAndThreadInvariant) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (bool with_failures : {false, true}) {
      FederationShape shape = FederationShape::Make(seed, with_failures);

      RecordingConsumer sequential;
      Result<RoundSummary> a =
          shape.MakeServer(1)->RunRound(PermissiveSpec(), sequential);
      ASSERT_TRUE(a.ok()) << a.status();
      EXPECT_EQ(sequential.finish_calls(), 1u);

      RecordingConsumer pooled;
      Result<RoundSummary> b =
          shape.MakeServer(4)->RunRound(PermissiveSpec(), pooled);
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(pooled.finish_calls(), 1u);

      // The sequence is ascending in client index, carries the RAW |D_j|
      // weights, and does not depend on the thread count — bit for bit.
      ASSERT_EQ(sequential.entries().size(), pooled.entries().size());
      size_t last_index = 0;
      for (size_t k = 0; k < sequential.entries().size(); ++k) {
        const auto& s = sequential.entries()[k];
        const auto& p = pooled.entries()[k];
        EXPECT_GE(s.client_index, last_index);
        last_index = s.client_index;
        EXPECT_EQ(s.client_index, p.client_index);
        EXPECT_EQ(s.weight,
                  static_cast<double>(shape.sizes[s.client_index]));
        EXPECT_EQ(s.weight, p.weight);  // Exactly, not approximately.
        EXPECT_EQ(s.payload_bytes, p.payload_bytes);
      }
      EXPECT_EQ(a->trace.ok_clients, b->trace.ok_clients);
      EXPECT_EQ(a->trace.failed_clients, b->trace.failed_clients);
    }
  }
}

TEST(StreamingEquivalenceTest, BufferedOverloadMatchesLegacyRenormalization) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    for (bool with_failures : {false, true}) {
      FederationShape shape = FederationShape::Make(seed, with_failures);
      Result<RoundResult> round =
          shape.MakeServer(1)->RunRound(PermissiveSpec());
      ASSERT_TRUE(round.ok()) << round.status();

      // Weights must be the respondents' sizes renormalized in ascending
      // index order — the exact arithmetic the pre-streaming server used.
      double total = 0.0;
      for (const ClientReply& r : round->replies) {
        total += static_cast<double>(shape.sizes[r.client_index]);
      }
      for (const ClientReply& r : round->replies) {
        EXPECT_DOUBLE_EQ(
            r.weight, static_cast<double>(shape.sizes[r.client_index]) / total);
      }
    }
  }
}

TEST(StreamingEquivalenceTest, StreamingFoldsMatchBufferedAggregation) {
  for (uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    for (bool with_failures : {false, true}) {
      for (size_t num_threads : {1u, 4u}) {
        FederationShape shape = FederationShape::Make(seed, with_failures);

        Result<RoundResult> buffered =
            shape.MakeServer(num_threads)->RunRound(PermissiveSpec());
        ASSERT_TRUE(buffered.ok()) << buffered.status();
        Result<double> legacy_scalar =
            Server::AggregateScalar(buffered->replies, "value");
        Result<std::vector<double>> legacy_tensor =
            Server::AggregateTensor(buffered->replies, "params");
        ASSERT_TRUE(legacy_scalar.ok()) << legacy_scalar.status();
        ASSERT_TRUE(legacy_tensor.ok()) << legacy_tensor.status();

        FoldingConsumer fold;
        Result<RoundSummary> streamed =
            shape.MakeServer(num_threads)->RunRound(PermissiveSpec(), fold);
        ASSERT_TRUE(streamed.ok()) << streamed.status();
        Result<double> fold_scalar = fold.ScalarMean();
        Result<std::vector<double>> fold_tensor = fold.TensorMean();
        ASSERT_TRUE(fold_scalar.ok()) << fold_scalar.status();
        ASSERT_TRUE(fold_tensor.ok()) << fold_tensor.status();

        // Raw-weight fold vs normalized-weight fold: the renormalization is
        // a scale factor on both the numerator and denominator, so the two
        // agree to ulps.
        EXPECT_NEAR(*fold_scalar, *legacy_scalar, 1e-12);
        ASSERT_EQ(fold_tensor->size(), legacy_tensor->size());
        for (size_t i = 0; i < fold_tensor->size(); ++i) {
          EXPECT_NEAR((*fold_tensor)[i], (*legacy_tensor)[i], 1e-12)
              << "element " << i;
        }
      }
    }
  }
}

TEST(StreamingEquivalenceTest, FlakyRoundsAgreeWhenCallOrderIsFixed) {
  // Both runs sequential with the same flaky seed: the Execute call
  // sequences are identical, so the injected fault patterns are identical,
  // and the two paths must agree on outcomes and aggregates.
  for (uint64_t seed : {9u, 10u}) {
    FederationShape shape = FederationShape::Make(seed, /*with_failures=*/false);
    auto make_flaky_server = [&shape]() {
      std::vector<std::shared_ptr<Client>> clients;
      for (size_t j = 0; j < shape.sizes.size(); ++j) {
        clients.push_back(std::make_shared<VectorClient>(
            "c" + std::to_string(j), shape.sizes[j], shape.values[j],
            shape.tensors[j], false));
      }
      return std::make_unique<Server>(
          std::make_unique<FlakyTransport>(
              std::make_unique<InProcessTransport>(std::move(clients)),
              /*failure_rate=*/0.3, /*seed=*/777),
          shape.sizes, /*num_threads=*/1);
    };

    Result<RoundResult> buffered = make_flaky_server()->RunRound(PermissiveSpec());
    FoldingConsumer fold;
    Result<RoundSummary> streamed =
        make_flaky_server()->RunRound(PermissiveSpec(), fold);

    ASSERT_EQ(buffered.ok(), streamed.ok());
    if (!buffered.ok()) continue;  // Both rejected the same partial round.
    ASSERT_EQ(buffered->outcomes.size(), streamed->outcomes.size());
    for (size_t j = 0; j < buffered->outcomes.size(); ++j) {
      EXPECT_EQ(buffered->outcomes[j].ok, streamed->outcomes[j].ok) << "client " << j;
    }
    Result<double> legacy = Server::AggregateScalar(buffered->replies, "value");
    Result<double> fold_mean = fold.ScalarMean();
    ASSERT_TRUE(legacy.ok()) << legacy.status();
    ASSERT_TRUE(fold_mean.ok()) << fold_mean.status();
    EXPECT_NEAR(*fold_mean, *legacy, 1e-12);
  }
}

TEST(StreamingEquivalenceTest, FeedRoundResultReplaysABufferedRound) {
  FederationShape shape = FederationShape::Make(77, /*with_failures=*/true);
  Result<RoundResult> round = shape.MakeServer(1)->RunRound(PermissiveSpec());
  ASSERT_TRUE(round.ok()) << round.status();
  const size_t n_replies = round->replies.size();
  const size_t ok_clients = round->trace.ok_clients;

  RecordingConsumer recorder;
  Result<RoundSummary> summary = FeedRoundResult(std::move(*round), recorder);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(recorder.finish_calls(), 1u);
  EXPECT_EQ(recorder.entries().size(), n_replies);
  EXPECT_EQ(summary->trace.ok_clients, ok_clients);
}

TEST(StreamingEquivalenceTest, ConsumeErrorAbortsTheRound) {
  class RejectingConsumer : public ReplyConsumer {
   public:
    Status Consume(ClientReply&&) override {
      return Status::InvalidArgument("rejected by consumer");
    }
    Status Finish() override {
      finished = true;
      return Status::OK();
    }
    bool finished = false;
  };

  FederationShape shape = FederationShape::Make(13, /*with_failures=*/false);
  for (size_t num_threads : {1u, 4u}) {
    RejectingConsumer rejecting;
    Result<RoundSummary> result =
        shape.MakeServer(num_threads)->RunRound(PermissiveSpec(), rejecting);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    // Finish marks a successful round; an aborted one must not see it.
    EXPECT_FALSE(rejecting.finished);
  }
}

}  // namespace
}  // namespace fedfc::fl
