#include "automl/meta_model.h"

#include <gtest/gtest.h>

#include "ml/tree/random_forest.h"

namespace fedfc::automl {
namespace {

/// Synthetic knowledge base whose label is a deterministic function of one
/// meta-feature, so any sensible classifier can learn it.
KnowledgeBase MakeLearnableKb(size_t n, uint64_t seed) {
  Rng rng(seed);
  KnowledgeBase kb;
  for (size_t i = 0; i < n; ++i) {
    KnowledgeBaseRecord r;
    r.dataset_name = "syn_" + std::to_string(i);
    double key = rng.Uniform(0.0, 3.0);
    r.meta_features = {key, rng.Normal(), rng.Normal()};
    r.best_algorithm = static_cast<int>(key);  // 0, 1 or 2.
    r.algorithm_losses.assign(kNumAlgorithms, 1.0);
    r.algorithm_losses[static_cast<size_t>(r.best_algorithm)] = 0.1;
    kb.Add(std::move(r));
  }
  return kb;
}

std::unique_ptr<ml::Classifier> SmallForest() {
  ml::ForestConfig cfg;
  cfg.n_trees = 40;
  cfg.tree.max_depth = 8;
  return std::make_unique<ml::RandomForestClassifier>(cfg);
}

TEST(MetaModelTest, TrainsAndRecommendsTopK) {
  KnowledgeBase kb = MakeLearnableKb(120, 1);
  MetaModel model(SmallForest());
  EXPECT_FALSE(model.trained());
  Rng rng(2);
  ASSERT_TRUE(model.Train(kb, &rng).ok());
  EXPECT_TRUE(model.trained());

  // A point squarely in the label-1 region.
  Result<std::vector<AlgorithmId>> rec = model.Recommend({1.5, 0.0, 0.0}, 3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 3u);
  EXPECT_EQ(rec->front(), AlgorithmId::kLinearSvr);  // Index 1.
}

TEST(MetaModelTest, RecommendBeforeTrainFails) {
  MetaModel model(SmallForest());
  EXPECT_EQ(model.Recommend({1.0, 2.0, 3.0}, 3).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MetaModelTest, RecommendRejectsWrongWidth) {
  KnowledgeBase kb = MakeLearnableKb(60, 3);
  MetaModel model(SmallForest());
  Rng rng(4);
  ASSERT_TRUE(model.Train(kb, &rng).ok());
  EXPECT_FALSE(model.Recommend({1.0}, 3).ok());
}

TEST(MetaModelTest, TopKBoundedByClassCount) {
  KnowledgeBase kb = MakeLearnableKb(60, 5);
  MetaModel model(SmallForest());
  Rng rng(6);
  ASSERT_TRUE(model.Train(kb, &rng).ok());
  Result<std::vector<AlgorithmId>> rec = model.Recommend({0.5, 0.0, 0.0}, 100);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), kNumAlgorithms);
}

TEST(MetaModelTest, CopyIsIndependent) {
  KnowledgeBase kb = MakeLearnableKb(60, 7);
  MetaModel model(SmallForest());
  Rng rng(8);
  ASSERT_TRUE(model.Train(kb, &rng).ok());
  MetaModel copy = model;
  Result<std::vector<AlgorithmId>> a = model.Recommend({1.5, 0.0, 0.0}, 1);
  Result<std::vector<AlgorithmId>> b = copy.Recommend({1.5, 0.0, 0.0}, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->front(), b->front());
}

TEST(EvaluateCandidateTest, LearnableKbScoresHighMrr) {
  KnowledgeBase kb = MakeLearnableKb(150, 9);
  Rng rng(10);
  Result<MetaModelEvaluation> eval = EvaluateMetaModelCandidate(
      [] { return SmallForest(); }, kb, /*top_k=*/3, &rng);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GT(eval->mrr_at_k, 0.8);
  EXPECT_GT(eval->f1, 0.7);
  EXPECT_EQ(eval->model_name, "RandomForestClassifier");
}

TEST(EvaluateCandidateTest, RejectsTinyKb) {
  KnowledgeBase kb = MakeLearnableKb(3, 11);
  Rng rng(12);
  EXPECT_FALSE(
      EvaluateMetaModelCandidate([] { return SmallForest(); }, kb, 3, &rng).ok());
}

TEST(CandidatesTest, AllEightTable4ModelsPresent) {
  auto candidates = MetaModelCandidates();
  ASSERT_EQ(candidates.size(), 8u);
  std::vector<std::string> expected = {
      "XGBClassifier", "Logistic Regression", "Gradient Boosting",
      "Random Forest", "CatBoost",            "LightGBM",
      "Extra Trees",   "MLPClassifier"};
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(candidates[i].first, expected[i]);
    EXPECT_NE(candidates[i].second(), nullptr);
  }
}

TEST(CandidatesTest, EveryCandidateTrainsOnLearnableKb) {
  KnowledgeBase kb = MakeLearnableKb(100, 13);
  for (const auto& [name, factory] : MetaModelCandidates()) {
    Rng rng(14);
    Result<MetaModelEvaluation> eval =
        EvaluateMetaModelCandidate(factory, kb, 3, &rng);
    ASSERT_TRUE(eval.ok()) << name << ": " << eval.status();
    EXPECT_GT(eval->mrr_at_k, 0.4) << name;
  }
}

}  // namespace
}  // namespace fedfc::automl
