#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "automl/phases/feature_phase.h"
#include "automl/phases/meta_phase.h"
#include "automl/phases/optimize_phase.h"
#include "core/rng.h"
#include "features/feature_selection.h"
#include "features/meta_features.h"
#include "fl/task_codec.h"

namespace fedfc::automl::phases {
namespace {

/// RoundRunner double: replies come from a responder function, never a
/// transport. Records every spec so tests can assert on task ids and seeds.
/// The responder still produces a buffered RoundResult for convenience; it is
/// replayed through the consumer exactly like a streaming round would be.
class FakeRoundRunner : public fl::RoundRunner {
 public:
  using Responder = std::function<Result<fl::RoundResult>(const fl::RoundSpec&)>;

  explicit FakeRoundRunner(Responder responder)
      : responder_(std::move(responder)) {}

  Result<fl::RoundSummary> RunRound(const fl::RoundSpec& spec,
                                    fl::ReplyConsumer& consumer) override {
    specs.push_back(spec);
    FEDFC_ASSIGN_OR_RETURN(fl::RoundResult result, responder_(spec));
    return fl::FeedRoundResult(std::move(result), consumer);
  }

  std::vector<fl::RoundSpec> specs;

 private:
  Responder responder_;
};

/// Builds a successful RoundResult from (weight, payload) pairs; weights are
/// renormalized like the real server does.
fl::RoundResult MakeResult(std::vector<std::pair<double, fl::Payload>> replies) {
  fl::RoundResult result;
  double total = 0.0;
  for (const auto& [w, _] : replies) total += w;
  for (size_t j = 0; j < replies.size(); ++j) {
    fl::ClientReply r;
    r.client_index = j;
    r.weight = replies[j].first / total;
    r.payload = std::move(replies[j].second);
    result.replies.push_back(std::move(r));
    fl::ClientOutcome outcome;
    outcome.client_index = j;
    outcome.ok = true;
    result.outcomes.push_back(outcome);
  }
  result.trace.sampled_clients = replies.size();
  result.trace.ok_clients = replies.size();
  result.trace.messages = replies.size();
  return result;
}

ts::Series MakeSine(size_t length, double phase) {
  std::vector<double> values(length);
  for (size_t t = 0; t < length; ++t) {
    values[t] = 10.0 + std::sin(0.26 * static_cast<double>(t) + phase) +
                0.01 * static_cast<double>(t % 7);
  }
  return ts::Series(std::move(values), /*start_epoch=*/0,
                    /*interval_seconds=*/3600);
}

TEST(MetaPhaseTest, AggregatesFakeClientReplies) {
  auto reply_for = [](const ts::Series& series) {
    fl::MetaFeaturesReply reply;
    reply.meta_features =
        features::ComputeClientMetaFeatures(series).ToTensor();
    reply.n_instances = static_cast<int64_t>(series.size());
    return reply.ToPayload();
  };
  FakeRoundRunner runner([&](const fl::RoundSpec&) {
    return MakeResult({{150.0, reply_for(MakeSine(150, 0.0))},
                       {50.0, reply_for(MakeSine(50, 1.2))}});
  });
  Result<MetaPhaseOutput> out = RunMetaPhase(runner, PhaseRoundOptions{});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(runner.specs.size(), 1u);
  EXPECT_EQ(runner.specs[0].task, fl::tasks::kMetaFeatures);
  EXPECT_EQ(out->aggregated.values.size(),
            features::AggregatedMetaFeatures::FeatureNames().size());
  EXPECT_GT(out->aggregated.global_lag_count, 0u);
  EXPECT_EQ(out->trace.sampled_clients, 2u);
}

TEST(MetaPhaseTest, UndecodableReplyFailsThePhase) {
  FakeRoundRunner runner([](const fl::RoundSpec&) {
    fl::Payload bogus;
    bogus.SetDouble("wrong_key", 1.0);
    return MakeResult({{1.0, bogus}});
  });
  EXPECT_FALSE(RunMetaPhase(runner, PhaseRoundOptions{}).ok());
}

TEST(FeaturePhaseTest, SpecDerivedFromAggregatedMetaFeatures) {
  features::AggregatedMetaFeatures agg;
  agg.global_lag_count = 30;  // Above the cap.
  agg.global_seasonal_periods = {24.0};
  FeaturePhaseInput input;
  input.aggregated = &agg;
  input.feature_selection = false;
  input.max_lags = 12;
  FakeRoundRunner runner([](const fl::RoundSpec&) -> Result<fl::RoundResult> {
    return Status::Internal("phase must not issue rounds");
  });
  Result<features::FeatureEngineeringSpec> spec =
      RunFeaturePhase(runner, input, PhaseRoundOptions{});
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(runner.specs.empty());  // Selection disabled: zero rounds.
  EXPECT_EQ(spec->n_lags, 12u);       // Clamped to max_lags.
  ASSERT_EQ(spec->seasonal_periods.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->seasonal_periods[0], 24.0);
  EXPECT_TRUE(spec->selected_features.empty());
}

TEST(FeaturePhaseTest, SelectionKeepsCoveringSubset) {
  features::AggregatedMetaFeatures agg;
  agg.global_lag_count = 4;
  FeaturePhaseInput input;
  input.aggregated = &agg;
  input.feature_coverage = 0.6;
  FakeRoundRunner runner([&](const fl::RoundSpec& spec) {
    Result<fl::FeatureImportanceRequest> request =
        fl::FeatureImportanceRequest::FromPayload(spec.request);
    EXPECT_TRUE(request.ok());
    Result<features::FeatureEngineeringSpec> decoded =
        features::FeatureEngineeringSpec::FromTensor(request->spec);
    EXPECT_TRUE(decoded.ok());
    size_t width = features::FeatureSchema(*decoded).size();
    // One dominant feature carries nearly all the importance mass.
    std::vector<double> importances(width, 0.02 / static_cast<double>(width));
    importances[0] = 0.98;
    fl::FeatureImportanceReply reply;
    reply.importances = importances;
    return MakeResult({{1.0, reply.ToPayload()}});
  });
  Result<features::FeatureEngineeringSpec> spec =
      RunFeaturePhase(runner, input, PhaseRoundOptions{});
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(runner.specs.size(), 1u);
  EXPECT_EQ(runner.specs[0].task, fl::tasks::kFeatureImportance);
  ASSERT_FALSE(spec->selected_features.empty());
  EXPECT_LT(spec->selected_features.size(),
            features::FeatureSchema(features::FeatureEngineeringSpec()).size());
}

TEST(FeaturePhaseTest, FailedImportanceRoundIsBestEffort) {
  features::AggregatedMetaFeatures agg;
  agg.global_lag_count = 4;
  FeaturePhaseInput input;
  input.aggregated = &agg;
  FakeRoundRunner runner([](const fl::RoundSpec&) -> Result<fl::RoundResult> {
    return Status::Internal("all clients failed");
  });
  Result<features::FeatureEngineeringSpec> spec =
      RunFeaturePhase(runner, input, PhaseRoundOptions{});
  ASSERT_TRUE(spec.ok()) << spec.status();  // Selection skipped, not fatal.
  EXPECT_TRUE(spec->selected_features.empty());
  EXPECT_EQ(spec->n_lags, 4u);
}

OptimizePhaseInput BaseOptimizeInput(Rng* rng,
                                     std::chrono::steady_clock::time_point start) {
  OptimizePhaseInput input;
  input.recommended = AllAlgorithms();
  input.spec_tensor = features::FeatureEngineeringSpec().ToTensor();
  input.strategy = SearchStrategy::kRandom;
  input.max_iterations = 4;
  input.time_budget_seconds = 300.0;
  input.start = start;
  input.rng = rng;
  return input;
}

TEST(OptimizePhaseTest, IterationCapAndBestTracking) {
  Rng rng(3);
  size_t calls = 0;
  FakeRoundRunner runner([&](const fl::RoundSpec& spec) {
    EXPECT_EQ(spec.task, fl::tasks::kFitEvaluate);
    fl::FitEvaluateReply reply;
    // Losses 4, 3, 2, 1: the best must be the last and equal 1.0.
    reply.valid_loss = static_cast<double>(4 - calls);
    reply.n_valid = 10;
    ++calls;
    return MakeResult({{1.0, reply.ToPayload()}});
  });
  Result<OptimizePhaseOutput> out = RunOptimizePhase(
      runner, BaseOptimizeInput(&rng, std::chrono::steady_clock::now()),
      PhaseRoundOptions{});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->iterations, 4u);
  ASSERT_EQ(out->loss_history.size(), 4u);
  EXPECT_DOUBLE_EQ(out->best_valid_loss, 1.0);
  // Round i of the phase samples with seed base + i.
  ASSERT_EQ(runner.specs.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(runner.specs[i].sampling_seed, i);
  }
}

TEST(OptimizePhaseTest, WarmStartConfigsEvaluatedFromTheBack) {
  Rng rng(3);
  Configuration first = SearchSpace::ForAlgorithm(AlgorithmId::kLasso)
                            .Sample(&rng);
  Configuration second = SearchSpace::ForAlgorithm(AlgorithmId::kHuber)
                             .Sample(&rng);
  std::vector<std::vector<double>> seen_configs;
  FakeRoundRunner runner([&](const fl::RoundSpec& spec) {
    Result<fl::FitEvaluateRequest> request =
        fl::FitEvaluateRequest::FromPayload(spec.request);
    EXPECT_TRUE(request.ok());
    seen_configs.push_back(request->config);
    fl::FitEvaluateReply reply;
    reply.valid_loss = 1.0;
    return MakeResult({{1.0, reply.ToPayload()}});
  });
  OptimizePhaseInput input =
      BaseOptimizeInput(&rng, std::chrono::steady_clock::now());
  input.max_iterations = 2;
  // Caller order is back-to-front: `second` must be evaluated first.
  input.warm_start = {first, second};
  Result<OptimizePhaseOutput> out =
      RunOptimizePhase(runner, std::move(input), PhaseRoundOptions{});
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(seen_configs.size(), 2u);
  EXPECT_EQ(seen_configs[0], second.ToTensor());
  EXPECT_EQ(seen_configs[1], first.ToTensor());
}

TEST(OptimizePhaseTest, FailedRoundsCountAgainstIterationCap) {
  Rng rng(3);
  size_t calls = 0;
  FakeRoundRunner runner(
      [&](const fl::RoundSpec&) -> Result<fl::RoundResult> {
        if (calls++ < 2) return Status::Internal("round failed");
        fl::FitEvaluateReply reply;
        reply.valid_loss = 0.5;
        return MakeResult({{1.0, reply.ToPayload()}});
      });
  Result<OptimizePhaseOutput> out = RunOptimizePhase(
      runner, BaseOptimizeInput(&rng, std::chrono::steady_clock::now()),
      PhaseRoundOptions{});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->iterations, 4u);          // Failures still consumed budget...
  EXPECT_EQ(out->loss_history.size(), 2u);  // ...but produced no observations.
}

TEST(OptimizePhaseTest, NoObservationsIsDeadlineExceeded) {
  Rng rng(3);
  FakeRoundRunner runner([](const fl::RoundSpec&) -> Result<fl::RoundResult> {
    return Status::Internal("round failed");
  });
  Result<OptimizePhaseOutput> out = RunOptimizePhase(
      runner, BaseOptimizeInput(&rng, std::chrono::steady_clock::now()),
      PhaseRoundOptions{});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FinalFitPhaseTest, AggregatesBlobsWithFedAvg) {
  FakeRoundRunner runner([](const fl::RoundSpec& spec) {
    EXPECT_EQ(spec.task, fl::tasks::kFitFinal);
    fl::FitFinalReply a;
    a.model_blob = {1.0, 2.0};
    a.n_fit = 10;
    fl::FitFinalReply b;
    b.model_blob = {3.0, 6.0};
    b.n_fit = 30;
    return MakeResult({{10.0, a.ToPayload()}, {30.0, b.ToPayload()}});
  });
  Configuration config;  // Linear family: blobs average element-wise.
  Result<std::vector<double>> blob = RunFinalFitPhase(
      runner, features::FeatureEngineeringSpec().ToTensor(), config,
      PhaseRoundOptions{});
  ASSERT_TRUE(blob.ok()) << blob.status();
  ASSERT_EQ(blob->size(), 2u);
  EXPECT_NEAR((*blob)[0], 0.25 * 1.0 + 0.75 * 3.0, 1e-12);
  EXPECT_NEAR((*blob)[1], 0.25 * 2.0 + 0.75 * 6.0, 1e-12);
}

TEST(FinalFitPhaseTest, UndecodableReplyPropagates) {
  FakeRoundRunner runner([](const fl::RoundSpec&) {
    fl::Payload bogus;
    bogus.SetDouble("oops", 1.0);
    return MakeResult({{1.0, bogus}});
  });
  EXPECT_FALSE(RunFinalFitPhase(runner,
                                features::FeatureEngineeringSpec().ToTensor(),
                                Configuration(), PhaseRoundOptions{})
                   .ok());
}

TEST(EvaluatePhaseTest, WeightedTestLoss) {
  FakeRoundRunner runner([](const fl::RoundSpec& spec) {
    EXPECT_EQ(spec.task, fl::tasks::kEvaluateModel);
    Result<fl::EvaluateModelRequest> request =
        fl::EvaluateModelRequest::FromPayload(spec.request);
    EXPECT_TRUE(request.ok());
    EXPECT_EQ(request->model_blob, std::vector<double>({0.5, 0.5}));
    fl::EvaluateModelReply a;
    a.test_loss = 2.0;
    fl::EvaluateModelReply b;
    b.test_loss = 4.0;
    return MakeResult({{30.0, a.ToPayload()}, {10.0, b.ToPayload()}});
  });
  Result<double> loss = RunEvaluatePhase(
      runner, features::FeatureEngineeringSpec().ToTensor(), Configuration(),
      {0.5, 0.5}, PhaseRoundOptions{});
  ASSERT_TRUE(loss.ok()) << loss.status();
  EXPECT_NEAR(*loss, 0.75 * 2.0 + 0.25 * 4.0, 1e-12);
}

}  // namespace
}  // namespace fedfc::automl::phases
