/// Cross-module integration tests: the full federated AutoML pipeline under
/// transport failures, determinism guarantees, and protocol invariants.

#include <gtest/gtest.h>

#include "automl/engine.h"
#include "automl/fed_client.h"
#include "data/generators.h"
#include "fl/transport.h"

namespace fedfc::automl {
namespace {

std::vector<ts::Series> MakeSplits(size_t n_clients, size_t per_client,
                                   uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec spec;
  spec.length = n_clients * per_client;
  spec.level = 10.0;
  spec.seasonalities = {{24.0, 2.0, 0.0}};
  spec.noise_std = 0.3;
  spec.ar_coefficient = 0.5;
  ts::Series series = data::GenerateSignal(spec, &rng);
  return *ts::SplitIntoClients(series, static_cast<int>(n_clients));
}

std::vector<std::shared_ptr<fl::Client>> MakeClients(
    const std::vector<ts::Series>& splits, uint64_t seed,
    std::vector<size_t>* sizes) {
  std::vector<std::shared_ptr<fl::Client>> clients;
  for (size_t j = 0; j < splits.size(); ++j) {
    ForecastClient::Options opt;
    opt.seed = seed + j;
    sizes->push_back(splits[j].size());
    clients.push_back(std::make_shared<ForecastClient>(
        "c" + std::to_string(j), splits[j], opt));
  }
  return clients;
}

EngineOptions FastOptions(uint64_t seed) {
  EngineOptions opt;
  opt.use_meta_model = false;
  opt.max_iterations = 5;
  opt.time_budget_seconds = 60.0;
  opt.bo.n_candidates = 64;
  opt.seed = seed;
  return opt;
}

TEST(IntegrationTest, SurvivesFlakyTransport) {
  std::vector<ts::Series> splits = MakeSplits(6, 150, 1);
  std::vector<size_t> sizes;
  auto clients = MakeClients(splits, 2, &sizes);
  auto inner = std::make_unique<fl::InProcessTransport>(std::move(clients));
  // 20% of all messages fail; the engine must still complete.
  fl::Server server(
      std::make_unique<fl::FlakyTransport>(std::move(inner), 0.2, 99), sizes);
  FedForecasterEngine engine(nullptr, FastOptions(3));
  Result<EngineReport> report = engine.Run(&server);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->test_loss, 0.0);
}

TEST(IntegrationTest, FullyDeterministicGivenSeed) {
  auto run_once = [&]() {
    std::vector<ts::Series> splits = MakeSplits(4, 150, 7);
    std::vector<size_t> sizes;
    auto clients = MakeClients(splits, 11, &sizes);
    fl::Server server(std::make_unique<fl::InProcessTransport>(std::move(clients)),
                      sizes);
    FedForecasterEngine engine(nullptr, FastOptions(13));
    return engine.Run(&server);
  };
  Result<EngineReport> a = run_once();
  Result<EngineReport> b = run_once();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->best_config.ToString(), b->best_config.ToString());
  EXPECT_DOUBLE_EQ(a->best_valid_loss, b->best_valid_loss);
  EXPECT_DOUBLE_EQ(a->test_loss, b->test_loss);
  EXPECT_EQ(a->loss_history, b->loss_history);
  EXPECT_EQ(a->global_model_blob, b->global_model_blob);
}

TEST(IntegrationTest, DifferentSeedsExploreDifferently) {
  std::vector<ts::Series> splits = MakeSplits(4, 150, 17);
  auto run_with = [&](uint64_t seed) {
    std::vector<size_t> sizes;
    auto clients = MakeClients(splits, 19, &sizes);
    fl::Server server(std::make_unique<fl::InProcessTransport>(std::move(clients)),
                      sizes);
    FedForecasterEngine engine(nullptr, FastOptions(seed));
    return engine.Run(&server);
  };
  Result<EngineReport> a = run_with(1);
  Result<EngineReport> b = run_with(2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->loss_history, b->loss_history);
}

TEST(IntegrationTest, TransportVolumeScalesWithClients) {
  auto volume_for = [&](size_t n_clients) {
    std::vector<ts::Series> splits = MakeSplits(n_clients, 150, 23);
    std::vector<size_t> sizes;
    auto clients = MakeClients(splits, 29, &sizes);
    fl::Server server(std::make_unique<fl::InProcessTransport>(std::move(clients)),
                      sizes);
    FedForecasterEngine engine(nullptr, FastOptions(31));
    Result<EngineReport> report = engine.Run(&server);
    EXPECT_TRUE(report.ok());
    return report.ok() ? report->transport.bytes_to_clients : 0;
  };
  size_t small = volume_for(2);
  size_t large = volume_for(8);
  EXPECT_GT(large, 2 * small);
}

TEST(IntegrationTest, EvaluateTestFlagSkipsTestEvaluation) {
  std::vector<ts::Series> splits = MakeSplits(3, 150, 37);
  std::vector<size_t> sizes;
  auto clients = MakeClients(splits, 41, &sizes);
  fl::Server server(std::make_unique<fl::InProcessTransport>(std::move(clients)),
                    sizes);
  EngineOptions opt = FastOptions(43);
  opt.evaluate_test = false;
  FedForecasterEngine engine(nullptr, opt);
  Result<EngineReport> report = engine.Run(&server);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_DOUBLE_EQ(report->test_loss, 0.0);  // Untouched default.
  EXPECT_FALSE(report->global_model_blob.empty());
}

TEST(IntegrationTest, ClientsNeverLeakRawObservations) {
  // Protocol audit: inspect every payload a client emits for the engine's
  // tasks and verify no tensor is long enough to be the raw series.
  std::vector<ts::Series> splits = MakeSplits(3, 200, 47);
  ForecastClient::Options copt;
  copt.seed = 53;
  ForecastClient client("audit", splits[0], copt);

  features::FeatureEngineeringSpec spec;
  spec.n_lags = 4;
  Configuration config;
  config.algorithm = AlgorithmId::kLasso;
  config.numeric["alpha"] = 1e-3;
  config.categorical["selection"] = "cyclic";

  fl::Payload fit_request;
  fit_request.SetTensor("spec", spec.ToTensor());
  fit_request.SetTensor("config", config.ToTensor());

  std::vector<std::pair<std::string, fl::Payload>> exchanges;
  Result<fl::Payload> mf = client.Handle(tasks::kMetaFeatures, fl::Payload());
  ASSERT_TRUE(mf.ok());
  exchanges.emplace_back(tasks::kMetaFeatures, *mf);
  Result<fl::Payload> fe = client.Handle(tasks::kFitEvaluate, fit_request);
  ASSERT_TRUE(fe.ok());
  exchanges.emplace_back(tasks::kFitEvaluate, *fe);

  const size_t raw_length = splits[0].size();
  for (const auto& [task, payload] : exchanges) {
    for (const std::string& key : payload.Keys()) {
      Result<std::vector<double>> tensor = payload.GetTensor(key);
      if (!tensor.ok()) continue;  // Scalars are fine.
      EXPECT_LT(tensor->size(), raw_length)
          << task << "/" << key << " is large enough to carry the raw series";
    }
  }
}

}  // namespace
}  // namespace fedfc::automl
