#include "automl/search_space.h"

#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "ml/tree/gbdt.h"

namespace fedfc::automl {
namespace {

TEST(AlgorithmTest, NamesAndIndices) {
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kLasso), "Lasso");
  EXPECT_STREQ(AlgorithmName(AlgorithmId::kXgb), "XGBRegressor");
  EXPECT_EQ(AllAlgorithms().size(), kNumAlgorithms);
  EXPECT_TRUE(AlgorithmFromIndex(0).ok());
  EXPECT_FALSE(AlgorithmFromIndex(-1).ok());
  EXPECT_FALSE(AlgorithmFromIndex(6).ok());
}

TEST(SearchSpaceTest, Table2Dimensions) {
  EXPECT_EQ(SearchSpace::ForAlgorithm(AlgorithmId::kLasso).n_dims(), 2u);
  EXPECT_EQ(SearchSpace::ForAlgorithm(AlgorithmId::kLinearSvr).n_dims(), 2u);
  EXPECT_EQ(SearchSpace::ForAlgorithm(AlgorithmId::kElasticNetCv).n_dims(), 2u);
  EXPECT_EQ(SearchSpace::ForAlgorithm(AlgorithmId::kXgb).n_dims(), 5u);
  EXPECT_EQ(SearchSpace::ForAlgorithm(AlgorithmId::kHuber).n_dims(), 2u);
  EXPECT_EQ(SearchSpace::ForAlgorithm(AlgorithmId::kQuantile).n_dims(), 2u);
}

TEST(SearchSpaceTest, SamplesRespectTable2Ranges) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Configuration c = SearchSpace::ForAlgorithm(AlgorithmId::kXgb).Sample(&rng);
    EXPECT_GE(c.numeric.at("n_estimators"), 5.0);
    EXPECT_LE(c.numeric.at("n_estimators"), 20.0);
    EXPECT_GE(c.numeric.at("max_depth"), 2.0);
    EXPECT_LE(c.numeric.at("max_depth"), 10.0);
    EXPECT_GE(c.numeric.at("learning_rate"), 0.01);
    EXPECT_LE(c.numeric.at("learning_rate"), 1.0);
    EXPECT_GE(c.numeric.at("reg_lambda"), 0.8);
    EXPECT_LE(c.numeric.at("reg_lambda"), 10.0);
    EXPECT_GE(c.numeric.at("subsample"), 0.1);
    EXPECT_LE(c.numeric.at("subsample"), 1.0);
    // Integer dims land on integers.
    EXPECT_DOUBLE_EQ(c.numeric.at("n_estimators"),
                     std::round(c.numeric.at("n_estimators")));
  }
}

TEST(SearchSpaceTest, LogUniformAlphaCoversOrdersOfMagnitude) {
  Rng rng(2);
  const SearchSpace& lasso = SearchSpace::ForAlgorithm(AlgorithmId::kLasso);
  double lo = 1e9, hi = -1e9;
  for (int trial = 0; trial < 200; ++trial) {
    double alpha = lasso.Sample(&rng).numeric.at("alpha");
    EXPECT_GE(alpha, std::exp(-5.0) * 0.999);
    EXPECT_LE(alpha, 10.0 * 1.001);
    lo = std::min(lo, alpha);
    hi = std::max(hi, alpha);
  }
  EXPECT_LT(lo, 0.05);  // Samples actually reach the low decades.
  EXPECT_GT(hi, 1.0);
}

TEST(SearchSpaceTest, CategoricalChoicesCovered) {
  Rng rng(3);
  std::set<std::string> seen;
  const SearchSpace& huber = SearchSpace::ForAlgorithm(AlgorithmId::kHuber);
  for (int trial = 0; trial < 100; ++trial) {
    seen.insert(huber.Sample(&rng).categorical.at("epsilon"));
  }
  EXPECT_EQ(seen.size(), 3u);  // {1.0, 1.35, 1.5}.
}

TEST(SearchSpaceTest, EncodeDecodeRoundTrip) {
  Rng rng(4);
  for (AlgorithmId id : AllAlgorithms()) {
    const SearchSpace& space = SearchSpace::ForAlgorithm(id);
    for (int trial = 0; trial < 20; ++trial) {
      Configuration c = space.Sample(&rng);
      Configuration back = space.Decode(space.Encode(c));
      EXPECT_EQ(back.algorithm, c.algorithm);
      for (const auto& [k, v] : c.numeric) {
        EXPECT_NEAR(back.numeric.at(k), v, 1e-9 + 1e-9 * std::fabs(v))
            << AlgorithmName(id) << " " << k;
      }
      for (const auto& [k, v] : c.categorical) {
        EXPECT_EQ(back.categorical.at(k), v) << AlgorithmName(id) << " " << k;
      }
    }
  }
}

TEST(ConfigurationTest, TensorRoundTrip) {
  Rng rng(5);
  for (AlgorithmId id : AllAlgorithms()) {
    Configuration c = SearchSpace::ForAlgorithm(id).Sample(&rng);
    Result<Configuration> back = Configuration::FromTensor(c.ToTensor());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->algorithm, c.algorithm);
    EXPECT_EQ(back->categorical, c.categorical);
  }
}

TEST(ConfigurationTest, FromTensorRejectsCorruption) {
  EXPECT_FALSE(Configuration::FromTensor({}).ok());
  EXPECT_FALSE(Configuration::FromTensor({99.0, 0.5, 0.5}).ok());
  EXPECT_FALSE(Configuration::FromTensor({0.0, 0.5}).ok());  // Lasso needs 2 dims.
}

TEST(ConfigurationTest, FromTensorRejectsNonFiniteFields) {
  // Fuzzer-surfaced (tests/fuzz/regressions/model_artifact/): a NaN
  // algorithm id was cast to int (UB), and NaN unit coordinates survive
  // Clamp and poison Decode's categorical cast.
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Configuration::FromTensor({kNaN, 0.5, 0.5}).ok());
  EXPECT_FALSE(Configuration::FromTensor({0.0, kNaN, 0.5}).ok());
  EXPECT_FALSE(Configuration::FromTensor({0.5, 0.5, 0.5}).ok());  // Fractional id.
}

TEST(ConfigurationTest, ToStringMentionsAlgorithmAndParams) {
  Rng rng(6);
  Configuration c = SearchSpace::ForAlgorithm(AlgorithmId::kLasso).Sample(&rng);
  std::string s = c.ToString();
  EXPECT_NE(s.find("Lasso"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("selection"), std::string::npos);
}

TEST(GridTest, CoversCategoricalTimesContinuous) {
  const SearchSpace& lasso = SearchSpace::ForAlgorithm(AlgorithmId::kLasso);
  std::vector<Configuration> grid = lasso.Grid(3);
  EXPECT_EQ(grid.size(), 6u);  // 3 alphas x 2 selections.
  std::set<std::string> selections;
  for (const auto& c : grid) selections.insert(c.categorical.at("selection"));
  EXPECT_EQ(selections.size(), 2u);
}

TEST(GridTest, IntegerAxisLimitedByCardinality) {
  const SearchSpace& xgb = SearchSpace::ForAlgorithm(AlgorithmId::kXgb);
  std::vector<Configuration> grid = xgb.Grid(2);
  EXPECT_EQ(grid.size(), 32u);  // 2^5.
}

TEST(CreateRegressorTest, AllAlgorithmsInstantiate) {
  Rng rng(7);
  for (AlgorithmId id : AllAlgorithms()) {
    Configuration c = SearchSpace::ForAlgorithm(id).Sample(&rng);
    Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(c);
    ASSERT_TRUE(model.ok()) << AlgorithmName(id);
    EXPECT_FALSE((*model)->Name().empty());
  }
}

TEST(CreateRegressorTest, HyperparametersReachTheModel) {
  Configuration c;
  c.algorithm = AlgorithmId::kXgb;
  c.numeric["n_estimators"] = 7;
  c.numeric["max_depth"] = 3;
  c.numeric["learning_rate"] = 0.5;
  c.numeric["reg_lambda"] = 2.0;
  c.numeric["subsample"] = 0.9;
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(c);
  ASSERT_TRUE(model.ok());
  auto* gbdt = dynamic_cast<ml::GbdtRegressor*>(model->get());
  ASSERT_NE(gbdt, nullptr);
  EXPECT_EQ(gbdt->config().n_estimators, 7u);
  EXPECT_EQ(gbdt->config().max_depth, 3);
  EXPECT_DOUBLE_EQ(gbdt->config().learning_rate, 0.5);
}

}  // namespace
}  // namespace fedfc::automl
