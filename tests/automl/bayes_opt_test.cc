#include "automl/bayesopt/bayes_opt.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "automl/bayesopt/gp.h"

namespace fedfc::automl {
namespace {

TEST(KernelTest, UnitValueAtZeroDistance) {
  EXPECT_NEAR(KernelValue(KernelKind::kRbf, 0.0, 0.3, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(KernelValue(KernelKind::kMatern52, 0.0, 0.3, 1.0), 1.0, 1e-12);
}

TEST(KernelTest, DecreasesWithDistance) {
  for (KernelKind kind : {KernelKind::kRbf, KernelKind::kMatern52}) {
    double prev = KernelValue(kind, 0.0, 0.5, 1.0);
    for (double d2 : {0.01, 0.1, 0.5, 1.0, 4.0}) {
      double v = KernelValue(kind, d2, 0.5, 1.0);
      EXPECT_LT(v, prev);
      EXPECT_GT(v, 0.0);
      prev = v;
    }
  }
}

TEST(GpTest, InterpolatesTrainingPoints) {
  Matrix x({{0.1}, {0.5}, {0.9}});
  std::vector<double> y = {1.0, -1.0, 2.0};
  GpConfig cfg;
  cfg.noise_var = 1e-8;
  GaussianProcess gp(cfg);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < 3; ++i) {
    GaussianProcess::Prediction p = gp.Predict({x(i, 0)});
    EXPECT_NEAR(p.mean, y[i], 1e-3);
    EXPECT_LT(p.variance, 1e-4);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  Matrix x({{0.4}, {0.5}, {0.6}});
  std::vector<double> y = {0.0, 0.1, 0.0};
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y).ok());
  double near_var = gp.Predict({0.5}).variance;
  double far_var = gp.Predict({0.0}).variance;
  EXPECT_GT(far_var, near_var * 2.0);
}

TEST(GpTest, UnfittedPredictsPrior) {
  GaussianProcess gp;
  GaussianProcess::Prediction p = gp.Predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
}

TEST(GpTest, HandlesDuplicateInputs) {
  Matrix x({{0.5}, {0.5}, {0.5}});
  std::vector<double> y = {1.0, 1.1, 0.9};
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y).ok());  // Jitter escalation must save this.
  EXPECT_NEAR(gp.Predict({0.5}).mean, 1.0, 0.2);
}

TEST(GpTest, RejectsBadShapes) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit(Matrix(), {}).ok());
  Matrix x({{0.1}});
  EXPECT_FALSE(gp.Fit(x, {1.0, 2.0}).ok());
}

TEST(EiTest, ZeroVarianceBelowBestGivesImprovement) {
  // Mean 1 below the best with tiny variance: EI ~= best - mean.
  EXPECT_NEAR(ExpectedImprovement(1.0, 1e-18, 2.0), 1.0, 1e-6);
}

TEST(EiTest, HopelessPointGivesNearZero) {
  EXPECT_LT(ExpectedImprovement(10.0, 0.01, 0.0), 1e-10);
}

TEST(EiTest, MoreUncertaintyMoreEi) {
  double low = ExpectedImprovement(1.0, 0.01, 1.0);
  double high = ExpectedImprovement(1.0, 1.0, 1.0);
  EXPECT_GT(high, low);
}

/// 1-D test objective on the Lasso space: loss is minimized at a specific
/// encoded alpha.
double TestObjective(const Configuration& config) {
  const SearchSpace& space = SearchSpace::ForAlgorithm(AlgorithmId::kLasso);
  std::vector<double> unit = space.Encode(config);
  double target = 0.3;
  return (unit[0] - target) * (unit[0] - target);
}

TEST(BayesianOptimizerTest, ConvergesNearOptimum) {
  BayesOptConfig cfg;
  cfg.n_initial_random = 3;
  cfg.n_candidates = 128;
  BayesianOptimizer bo(AlgorithmId::kLasso, cfg);
  Rng rng(1);
  for (int iter = 0; iter < 25; ++iter) {
    Configuration c = bo.Propose(&rng);
    bo.Observe(c, TestObjective(c));
  }
  EXPECT_LT(bo.best_loss(), 0.01);
  EXPECT_EQ(bo.n_observations(), 25u);
}

TEST(BayesianOptimizerTest, BeatsRandomSearchOnSmoothObjective) {
  // Same evaluation budget: BO's best should usually beat random sampling.
  int bo_wins = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    BayesOptConfig cfg;
    cfg.n_initial_random = 3;
    BayesianOptimizer bo(AlgorithmId::kLasso, cfg);
    Rng bo_rng(seed);
    for (int iter = 0; iter < 15; ++iter) {
      Configuration c = bo.Propose(&bo_rng);
      bo.Observe(c, TestObjective(c));
    }
    Rng rs_rng(seed + 100);
    double rs_best = 1e9;
    const SearchSpace& space = SearchSpace::ForAlgorithm(AlgorithmId::kLasso);
    for (int iter = 0; iter < 15; ++iter) {
      rs_best = std::min(rs_best, TestObjective(space.Sample(&rs_rng)));
    }
    if (bo.best_loss() <= rs_best) ++bo_wins;
  }
  EXPECT_GE(bo_wins, 3);
}

TEST(BayesianOptimizerTest, IgnoresNonFiniteLosses) {
  BayesianOptimizer bo(AlgorithmId::kLasso, BayesOptConfig{});
  Rng rng(2);
  Configuration c = bo.Propose(&rng);
  bo.Observe(c, std::nan(""));
  EXPECT_EQ(bo.n_observations(), 0u);
}

TEST(PortfolioTest, ExploresAllMembersFirst) {
  std::vector<AlgorithmId> algos = {AlgorithmId::kLasso, AlgorithmId::kHuber,
                                    AlgorithmId::kXgb};
  PortfolioOptimizer portfolio(algos, BayesOptConfig{});
  Rng rng(3);
  std::set<AlgorithmId> proposed;
  for (int iter = 0; iter < 6; ++iter) {
    Configuration c = portfolio.Propose(&rng);
    proposed.insert(c.algorithm);
    portfolio.Observe(c, 1.0);
  }
  EXPECT_EQ(proposed.size(), 3u);  // Round robin touched everyone.
}

TEST(PortfolioTest, TracksGlobalBest) {
  std::vector<AlgorithmId> algos = {AlgorithmId::kLasso, AlgorithmId::kHuber};
  PortfolioOptimizer portfolio(algos, BayesOptConfig{});
  Rng rng(4);
  for (int iter = 0; iter < 12; ++iter) {
    Configuration c = portfolio.Propose(&rng);
    double loss = c.algorithm == AlgorithmId::kHuber ? 0.1 : 1.0;
    portfolio.Observe(c, loss);
  }
  EXPECT_DOUBLE_EQ(portfolio.best_loss(), 0.1);
  EXPECT_EQ(portfolio.best_config().algorithm, AlgorithmId::kHuber);
}

// Quadratic objective on the Huber space.
double TestObjectiveHuber(const Configuration& config) {
  const SearchSpace& space = SearchSpace::ForAlgorithm(AlgorithmId::kHuber);
  std::vector<double> unit = space.Encode(config);
  return (unit[1] - 0.5) * (unit[1] - 0.5);
}

TEST(PortfolioTest, ConcentratesOnWinningAlgorithm) {
  std::vector<AlgorithmId> algos = {AlgorithmId::kLasso, AlgorithmId::kHuber};
  BayesOptConfig cfg;
  cfg.n_initial_random = 2;
  PortfolioOptimizer portfolio(algos, cfg);
  Rng rng(5);
  int huber_proposals = 0;
  for (int iter = 0; iter < 30; ++iter) {
    Configuration c = portfolio.Propose(&rng);
    if (c.algorithm == AlgorithmId::kHuber) ++huber_proposals;
    // Huber has much lower and improving loss; Lasso is terrible.
    double loss = c.algorithm == AlgorithmId::kHuber ? TestObjectiveHuber(c) : 10.0;
    portfolio.Observe(c, loss);
  }
  EXPECT_GT(huber_proposals, 15);
}

}  // namespace
}  // namespace fedfc::automl
