#include <gtest/gtest.h>

#include "automl/knowledge_base.h"
#include "automl/meta_model.h"
#include "ml/tree/random_forest.h"

namespace fedfc::automl {
namespace {

/// KB where record i sits at meta-feature position (i, 0, 0) and carries a
/// distinctive winning Lasso configuration (alpha index-coded).
KnowledgeBase MakeKbWithConfigs(size_t n) {
  KnowledgeBase kb;
  for (size_t i = 0; i < n; ++i) {
    KnowledgeBaseRecord r;
    r.dataset_name = "d" + std::to_string(i);
    r.meta_features = {static_cast<double>(i), 0.0, 0.0};
    r.best_algorithm = static_cast<int>(AlgorithmId::kLasso);
    r.algorithm_losses.assign(kNumAlgorithms, 1.0);
    r.algorithm_losses[static_cast<size_t>(r.best_algorithm)] = 0.1;
    r.best_configs.assign(kNumAlgorithms, {});
    Configuration lasso;
    lasso.algorithm = AlgorithmId::kLasso;
    // Distinct per-record alpha so warm starts are distinguishable.
    lasso.numeric["alpha"] = 0.001 * static_cast<double>(i + 1);
    lasso.categorical["selection"] = "cyclic";
    r.best_configs[static_cast<size_t>(AlgorithmId::kLasso)] = lasso.ToTensor();
    Configuration huber;
    huber.algorithm = AlgorithmId::kHuber;
    huber.categorical["epsilon"] = "1.35";
    huber.numeric["alpha"] = 0.01;
    r.best_configs[static_cast<size_t>(AlgorithmId::kHuber)] = huber.ToTensor();
    kb.Add(std::move(r));
  }
  return kb;
}

MetaModel TrainOn(const KnowledgeBase& kb) {
  ml::ForestConfig cfg;
  cfg.n_trees = 10;
  MetaModel model(std::make_unique<ml::RandomForestClassifier>(cfg));
  Rng rng(1);
  EXPECT_TRUE(model.Train(kb, &rng).ok());
  return model;
}

TEST(WarmStartTest, NearestNeighbourConfigComesFirst) {
  KnowledgeBase kb = MakeKbWithConfigs(10);
  MetaModel model = TrainOn(kb);
  // Query at position 7: record 7 is nearest.
  Result<std::vector<Configuration>> configs = model.WarmStartConfigurations(
      {7.0, 0.0, 0.0}, {AlgorithmId::kLasso}, 2);
  ASSERT_TRUE(configs.ok()) << configs.status();
  ASSERT_GE(configs->size(), 1u);
  EXPECT_EQ(configs->front().algorithm, AlgorithmId::kLasso);
  EXPECT_NEAR(configs->front().numeric.at("alpha"), 0.008, 0.002);
}

TEST(WarmStartTest, FiltersToRequestedAlgorithms) {
  KnowledgeBase kb = MakeKbWithConfigs(6);
  MetaModel model = TrainOn(kb);
  Result<std::vector<Configuration>> configs = model.WarmStartConfigurations(
      {2.0, 0.0, 0.0}, {AlgorithmId::kHuber}, 4);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  for (const Configuration& c : *configs) {
    EXPECT_EQ(c.algorithm, AlgorithmId::kHuber);
  }
}

TEST(WarmStartTest, DeduplicatesIdenticalConfigs) {
  // All records share the same Huber config: only one should come back.
  KnowledgeBase kb = MakeKbWithConfigs(5);
  MetaModel model = TrainOn(kb);
  Result<std::vector<Configuration>> configs = model.WarmStartConfigurations(
      {2.0, 0.0, 0.0}, {AlgorithmId::kHuber}, 5);
  ASSERT_TRUE(configs.ok());
  EXPECT_EQ(configs->size(), 1u);
}

TEST(WarmStartTest, RespectsRequestedCount) {
  KnowledgeBase kb = MakeKbWithConfigs(10);
  MetaModel model = TrainOn(kb);
  Result<std::vector<Configuration>> configs = model.WarmStartConfigurations(
      {5.0, 0.0, 0.0}, {AlgorithmId::kLasso, AlgorithmId::kHuber}, 3);
  ASSERT_TRUE(configs.ok());
  EXPECT_LE(configs->size(), 3u);
  EXPECT_GE(configs->size(), 2u);
}

TEST(WarmStartTest, UntrainedModelFails) {
  ml::ForestConfig cfg;
  MetaModel model(std::make_unique<ml::RandomForestClassifier>(cfg));
  EXPECT_FALSE(
      model.WarmStartConfigurations({1.0}, {AlgorithmId::kLasso}, 2).ok());
}

TEST(WarmStartTest, EmptyConfigBlocksYieldEmptyList) {
  // Records without stored configs (legacy KB) return no warm starts.
  KnowledgeBase kb;
  for (size_t i = 0; i < 6; ++i) {
    KnowledgeBaseRecord r;
    r.dataset_name = "d" + std::to_string(i);
    r.meta_features = {static_cast<double>(i), 0.0};
    r.best_algorithm = 0;
    r.algorithm_losses.assign(kNumAlgorithms, 1.0);
    kb.Add(std::move(r));
  }
  MetaModel model = TrainOn(kb);
  Result<std::vector<Configuration>> configs = model.WarmStartConfigurations(
      {1.0, 0.0}, AllAlgorithms(), 3);
  ASSERT_TRUE(configs.ok());
  EXPECT_TRUE(configs->empty());
}

TEST(WarmStartTest, KbCsvPersistsConfigs) {
  KnowledgeBase kb = MakeKbWithConfigs(3);
  std::string path = "/tmp/fedfc_kb_warm_test.csv";
  ASSERT_TRUE(kb.SaveCsv(path).ok());
  Result<KnowledgeBase> back = KnowledgeBase::LoadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  const auto& r = back->records()[1];
  ASSERT_EQ(r.best_configs.size(), kNumAlgorithms);
  EXPECT_EQ(r.best_configs[static_cast<size_t>(AlgorithmId::kLasso)],
            kb.records()[1].best_configs[static_cast<size_t>(AlgorithmId::kLasso)]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedfc::automl
