#include "automl/model_io.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "ml/linear/huber.h"
#include "ml/tree/gbdt.h"

namespace fedfc::automl {
namespace {

struct Problem {
  Matrix x;
  std::vector<double> y;
};

Problem MakeProblem(double slope, uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = Matrix(120, 2);
  p.y.resize(120);
  for (size_t i = 0; i < 120; ++i) {
    p.x(i, 0) = rng.Uniform(-2, 2);
    p.x(i, 1) = rng.Uniform(-2, 2);
    p.y[i] = slope * p.x(i, 0) + 0.5 * p.x(i, 1);
  }
  return p;
}

Configuration HuberConfig() {
  Configuration c;
  c.algorithm = AlgorithmId::kHuber;
  c.categorical["epsilon"] = "1.35";
  c.numeric["alpha"] = 1e-4;
  return c;
}

Configuration XgbConfig() {
  Configuration c;
  c.algorithm = AlgorithmId::kXgb;
  c.numeric = {{"n_estimators", 10},
               {"max_depth", 3},
               {"learning_rate", 0.2},
               {"reg_lambda", 1.0},
               {"subsample", 1.0}};
  return c;
}

TEST(ModelIoTest, LinearRoundTrip) {
  Problem p = MakeProblem(2.0, 1);
  Configuration config = HuberConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  ASSERT_TRUE((*model)->Fit(p.x, p.y, &rng).ok());
  Result<std::vector<double>> blob = SerializeModel(config, **model);
  ASSERT_TRUE(blob.ok());
  Result<std::unique_ptr<ml::Regressor>> restored =
      DeserializeModel(config, *blob);
  ASSERT_TRUE(restored.ok());
  std::vector<double> a = (*model)->Predict(p.x);
  std::vector<double> b = (*restored)->Predict(p.x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ModelIoTest, XgbRoundTrip) {
  Problem p = MakeProblem(3.0, 3);
  Configuration config = XgbConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  Rng rng(4);
  ASSERT_TRUE((*model)->Fit(p.x, p.y, &rng).ok());
  Result<std::vector<double>> blob = SerializeModel(config, **model);
  ASSERT_TRUE(blob.ok());
  Result<std::unique_ptr<ml::Regressor>> restored =
      DeserializeModel(config, *blob);
  ASSERT_TRUE(restored.ok());
  std::vector<double> a = (*model)->Predict(p.x);
  std::vector<double> b = (*restored)->Predict(p.x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ModelIoTest, SerializeRejectsUnfittedLinear) {
  Configuration config = HuberConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(SerializeModel(config, **model).ok());
}

TEST(AggregateBlobsTest, LinearBlobsAverage) {
  Configuration config = HuberConfig();
  std::vector<std::vector<double>> blobs = {{2.0, 4.0, 1.0}, {4.0, 8.0, 3.0}};
  Result<std::vector<double>> merged =
      AggregateModelBlobs(config, blobs, {0.5, 0.5});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ((*merged)[0], 3.0);
  EXPECT_DOUBLE_EQ((*merged)[1], 6.0);
  EXPECT_DOUBLE_EQ((*merged)[2], 2.0);
}

TEST(AggregateBlobsTest, UnnormalizedWeightsRenormalized) {
  Configuration config = HuberConfig();
  std::vector<std::vector<double>> blobs = {{2.0}, {4.0}};
  Result<std::vector<double>> merged =
      AggregateModelBlobs(config, blobs, {10.0, 30.0});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ((*merged)[0], 3.5);
}

TEST(AggregateBlobsTest, XgbMergePredictionEquivalentToEnsemble) {
  // Two fitted XGB models on different slopes: the merged blob must predict
  // the weighted average of the two models' predictions.
  Configuration config = XgbConfig();
  Problem p1 = MakeProblem(2.0, 5);
  Problem p2 = MakeProblem(5.0, 6);
  std::vector<std::vector<double>> blobs;
  std::vector<std::unique_ptr<ml::Regressor>> models;
  for (const Problem* p : {&p1, &p2}) {
    Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
    ASSERT_TRUE(model.ok());
    Rng rng(7);
    ASSERT_TRUE((*model)->Fit(p->x, p->y, &rng).ok());
    Result<std::vector<double>> blob = SerializeModel(config, **model);
    ASSERT_TRUE(blob.ok());
    blobs.push_back(std::move(*blob));
    models.push_back(std::move(*model));
  }
  std::vector<double> weights = {0.3, 0.7};
  Result<std::vector<double>> merged = AggregateModelBlobs(config, blobs, weights);
  ASSERT_TRUE(merged.ok());
  Result<std::unique_ptr<ml::Regressor>> global =
      DeserializeModel(config, *merged);
  ASSERT_TRUE(global.ok());

  std::vector<double> pa = models[0]->Predict(p1.x);
  std::vector<double> pb = models[1]->Predict(p1.x);
  std::vector<double> pg = (*global)->Predict(p1.x);
  for (size_t i = 0; i < pg.size(); ++i) {
    EXPECT_NEAR(pg[i], 0.3 * pa[i] + 0.7 * pb[i], 1e-9);
  }
}

TEST(AggregateBlobsTest, RejectsBadInputs) {
  Configuration config = HuberConfig();
  EXPECT_FALSE(AggregateModelBlobs(config, {}, {}).ok());
  EXPECT_FALSE(AggregateModelBlobs(config, {{1.0}, {1.0, 2.0}}, {0.5, 0.5}).ok());
  EXPECT_FALSE(AggregateModelBlobs(config, {{1.0}}, {0.0}).ok());
  Configuration xgb = XgbConfig();
  EXPECT_FALSE(AggregateModelBlobs(xgb, {{1.0}}, {1.0}).ok());  // Short blob.
}

}  // namespace
}  // namespace fedfc::automl
