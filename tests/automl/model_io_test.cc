#include "automl/model_io.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/rng.h"
#include "ml/linear/huber.h"
#include "ml/tree/gbdt.h"

namespace fedfc::automl {
namespace {

struct Problem {
  Matrix x;
  std::vector<double> y;
};

Problem MakeProblem(double slope, uint64_t seed) {
  Rng rng(seed);
  Problem p;
  p.x = Matrix(120, 2);
  p.y.resize(120);
  for (size_t i = 0; i < 120; ++i) {
    p.x(i, 0) = rng.Uniform(-2, 2);
    p.x(i, 1) = rng.Uniform(-2, 2);
    p.y[i] = slope * p.x(i, 0) + 0.5 * p.x(i, 1);
  }
  return p;
}

Configuration HuberConfig() {
  Configuration c;
  c.algorithm = AlgorithmId::kHuber;
  c.categorical["epsilon"] = "1.35";
  c.numeric["alpha"] = 1e-4;
  return c;
}

Configuration XgbConfig() {
  Configuration c;
  c.algorithm = AlgorithmId::kXgb;
  c.numeric = {{"n_estimators", 10},
               {"max_depth", 3},
               {"learning_rate", 0.2},
               {"reg_lambda", 1.0},
               {"subsample", 1.0}};
  return c;
}

TEST(ModelIoTest, LinearRoundTrip) {
  Problem p = MakeProblem(2.0, 1);
  Configuration config = HuberConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  ASSERT_TRUE((*model)->Fit(p.x, p.y, &rng).ok());
  Result<std::vector<double>> blob = SerializeModel(config, **model);
  ASSERT_TRUE(blob.ok());
  Result<std::unique_ptr<ml::Regressor>> restored =
      DeserializeModel(config, *blob);
  ASSERT_TRUE(restored.ok());
  std::vector<double> a = (*model)->Predict(p.x);
  std::vector<double> b = (*restored)->Predict(p.x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ModelIoTest, XgbRoundTrip) {
  Problem p = MakeProblem(3.0, 3);
  Configuration config = XgbConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  Rng rng(4);
  ASSERT_TRUE((*model)->Fit(p.x, p.y, &rng).ok());
  Result<std::vector<double>> blob = SerializeModel(config, **model);
  ASSERT_TRUE(blob.ok());
  Result<std::unique_ptr<ml::Regressor>> restored =
      DeserializeModel(config, *blob);
  ASSERT_TRUE(restored.ok());
  std::vector<double> a = (*model)->Predict(p.x);
  std::vector<double> b = (*restored)->Predict(p.x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(ModelIoTest, SerializeRejectsUnfittedLinear) {
  Configuration config = HuberConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(SerializeModel(config, **model).ok());
}

TEST(AggregateBlobsTest, LinearBlobsAverage) {
  Configuration config = HuberConfig();
  std::vector<std::vector<double>> blobs = {{2.0, 4.0, 1.0}, {4.0, 8.0, 3.0}};
  Result<std::vector<double>> merged =
      AggregateModelBlobs(config, blobs, {0.5, 0.5});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ((*merged)[0], 3.0);
  EXPECT_DOUBLE_EQ((*merged)[1], 6.0);
  EXPECT_DOUBLE_EQ((*merged)[2], 2.0);
}

TEST(AggregateBlobsTest, UnnormalizedWeightsRenormalized) {
  Configuration config = HuberConfig();
  std::vector<std::vector<double>> blobs = {{2.0}, {4.0}};
  Result<std::vector<double>> merged =
      AggregateModelBlobs(config, blobs, {10.0, 30.0});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ((*merged)[0], 3.5);
}

TEST(AggregateBlobsTest, XgbMergePredictionEquivalentToEnsemble) {
  // Two fitted XGB models on different slopes: the merged blob must predict
  // the weighted average of the two models' predictions.
  Configuration config = XgbConfig();
  Problem p1 = MakeProblem(2.0, 5);
  Problem p2 = MakeProblem(5.0, 6);
  std::vector<std::vector<double>> blobs;
  std::vector<std::unique_ptr<ml::Regressor>> models;
  for (const Problem* p : {&p1, &p2}) {
    Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
    ASSERT_TRUE(model.ok());
    Rng rng(7);
    ASSERT_TRUE((*model)->Fit(p->x, p->y, &rng).ok());
    Result<std::vector<double>> blob = SerializeModel(config, **model);
    ASSERT_TRUE(blob.ok());
    blobs.push_back(std::move(*blob));
    models.push_back(std::move(*model));
  }
  std::vector<double> weights = {0.3, 0.7};
  Result<std::vector<double>> merged = AggregateModelBlobs(config, blobs, weights);
  ASSERT_TRUE(merged.ok());
  Result<std::unique_ptr<ml::Regressor>> global =
      DeserializeModel(config, *merged);
  ASSERT_TRUE(global.ok());

  std::vector<double> pa = models[0]->Predict(p1.x);
  std::vector<double> pb = models[1]->Predict(p1.x);
  std::vector<double> pg = (*global)->Predict(p1.x);
  for (size_t i = 0; i < pg.size(); ++i) {
    EXPECT_NEAR(pg[i], 0.3 * pa[i] + 0.7 * pb[i], 1e-9);
  }
}

TEST(AggregateBlobsTest, RejectsBadInputs) {
  Configuration config = HuberConfig();
  EXPECT_FALSE(AggregateModelBlobs(config, {}, {}).ok());
  EXPECT_FALSE(AggregateModelBlobs(config, {{1.0}, {1.0, 2.0}}, {0.5, 0.5}).ok());
  EXPECT_FALSE(AggregateModelBlobs(config, {{1.0}}, {0.0}).ok());
  Configuration xgb = XgbConfig();
  EXPECT_FALSE(AggregateModelBlobs(xgb, {{1.0}}, {1.0}).ok());  // Short blob.
}

// ---------------------------------------------------------------------------
// Decode hardening: truncated, bit-flipped, and implausibly-sized blobs are
// rejected with typed errors before any decoder state (or allocation sized
// from an untrusted count) is built.
// ---------------------------------------------------------------------------

TEST(ModelIoHardeningTest, NonFiniteBlobValuesRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double poison : {nan, inf, -inf}) {
    Result<std::unique_ptr<ml::Regressor>> linear =
        DeserializeModel(HuberConfig(), {1.0, poison, 2.0});
    EXPECT_EQ(linear.status().code(), StatusCode::kInvalidArgument);
    Result<std::unique_ptr<ml::Regressor>> xgb =
        DeserializeModel(XgbConfig(), {0.0, 0.1, poison});
    EXPECT_EQ(xgb.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ModelIoHardeningTest, ImplausibleXgbCountFieldsRejected) {
  // The tree/node counts are untrusted doubles. Negative, fractional, and
  // blob-exceeding claims must all fail the checked cast — the huge claim
  // in particular must be rejected *before* any node storage is sized.
  for (double n_trees : {-1.0, 1.5, 1e18, 4.0}) {  // 4 trees can't fit here.
    std::vector<double> blob = {0.0, 0.1, n_trees};
    EXPECT_FALSE(DeserializeModel(XgbConfig(), blob).ok()) << n_trees;
  }
  // Same for a tree's node count: one tree claiming more nodes than the
  // remaining span could hold.
  std::vector<double> blob = {0.0, 0.1, 1.0, 1e12};
  EXPECT_FALSE(DeserializeModel(XgbConfig(), blob).ok());
}

TEST(ModelIoHardeningTest, TruncatedXgbBlobRejected) {
  Problem p = MakeProblem(2.0, 31);
  Configuration config = XgbConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  ASSERT_TRUE(model.ok());
  Rng rng(32);
  ASSERT_TRUE((*model)->Fit(p.x, p.y, &rng).ok());
  Result<std::vector<double>> blob = SerializeModel(config, **model);
  ASSERT_TRUE(blob.ok());
  ASSERT_GT(blob->size(), 4u);
  std::vector<double> truncated(blob->begin(),
                                blob->begin() + static_cast<long>(blob->size() / 2));
  EXPECT_FALSE(DeserializeModel(config, truncated).ok());
}

// ---------------------------------------------------------------------------
// Serving artifact codec and the Forecaster entry point.
// ---------------------------------------------------------------------------

ModelArtifact MakeArtifact(uint64_t seed) {
  Problem p = MakeProblem(2.0, seed);
  Configuration config = HuberConfig();
  Result<std::unique_ptr<ml::Regressor>> model = CreateRegressor(config);
  EXPECT_TRUE(model.ok());
  Rng rng(seed + 1);
  EXPECT_TRUE((*model)->Fit(p.x, p.y, &rng).ok());
  Result<std::vector<double>> blob = SerializeModel(config, **model);
  EXPECT_TRUE(blob.ok());
  ModelArtifact artifact;
  artifact.config = std::move(config);
  artifact.spec.n_lags = 2;  // Two lag columns, nothing else: width 2.
  artifact.spec.include_time_features = false;
  artifact.spec.include_trend_feature = false;
  artifact.blob = std::move(*blob);
  return artifact;
}

TEST(ModelArtifactTest, CodecRoundTrip) {
  ModelArtifact artifact = MakeArtifact(41);
  Result<ModelArtifact> decoded =
      DecodeModelArtifact(EncodeModelArtifact(artifact));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->config.algorithm, artifact.config.algorithm);
  EXPECT_EQ(decoded->spec.n_lags, artifact.spec.n_lags);
  EXPECT_EQ(decoded->spec.include_time_features,
            artifact.spec.include_time_features);
  EXPECT_EQ(decoded->spec.include_trend_feature,
            artifact.spec.include_trend_feature);
  ASSERT_EQ(decoded->blob.size(), artifact.blob.size());
  for (size_t i = 0; i < artifact.blob.size(); ++i) {
    EXPECT_EQ(decoded->blob[i], artifact.blob[i]);
  }
}

TEST(ModelArtifactTest, TruncatedBytesRejected) {
  std::vector<uint8_t> bytes = EncodeModelArtifact(MakeArtifact(43));
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{3}, size_t{0}}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(DecodeModelArtifact(cut).ok()) << keep << " bytes kept";
  }
}

TEST(ForecasterTest, PredictsLikeTheDeserializedModel) {
  ModelArtifact artifact = MakeArtifact(45);
  Result<Forecaster> forecaster = Forecaster::FromArtifact(artifact);
  ASSERT_TRUE(forecaster.ok()) << forecaster.status();
  EXPECT_EQ(forecaster->n_features(), 2u);

  Result<std::unique_ptr<ml::Regressor>> model =
      DeserializeModel(artifact.config, artifact.blob);
  ASSERT_TRUE(model.ok());
  Problem p = MakeProblem(1.0, 46);
  Result<std::vector<double>> served = forecaster->Forecast(p.x);
  ASSERT_TRUE(served.ok()) << served.status();
  std::vector<double> direct = (*model)->Predict(p.x);
  ASSERT_EQ(served->size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) EXPECT_EQ((*served)[i], direct[i]);
}

TEST(ForecasterTest, RejectsOutOfRangeFeatureSelection) {
  ModelArtifact artifact = MakeArtifact(47);
  artifact.spec.selected_features = {0, 99};  // 99 outside the 2-col schema.
  Status status = Forecaster::FromArtifact(artifact).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("selected feature"), std::string::npos)
      << status;
}

TEST(ForecasterTest, ForecastValidatesRequestShape) {
  Result<Forecaster> forecaster = Forecaster::FromArtifact(MakeArtifact(49));
  ASSERT_TRUE(forecaster.ok());
  EXPECT_FALSE(forecaster->Forecast(Matrix(0, 2)).ok());  // Empty.
  EXPECT_FALSE(forecaster->Forecast(Matrix(4, 3)).ok());  // Wrong width.
}

TEST(ForecasterTest, RejectsBlobNarrowerThanSchema) {
  // Fuzzer-surfaced (tests/fuzz/regressions/model_artifact/crash-linear-
  // width): a linear blob whose weight count disagrees with the spec's
  // schema used to pass FromArtifact and abort inside Predict's width
  // CHECK. ValidateFeatureWidth now rejects it at the decode boundary.
  ModelArtifact artifact = MakeArtifact(51);
  artifact.blob = {0.1, 0.2, 0.3, 1.5};  // 3 weights for a 2-column schema.
  Status status = Forecaster::FromArtifact(artifact).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fedfc::automl
