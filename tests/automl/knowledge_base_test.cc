#include "automl/knowledge_base.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "features/meta_features.h"

namespace fedfc::automl {
namespace {

TEST(SampleSeriesTest, LengthAndVariety) {
  Rng rng(1);
  ts::Series a = SampleKnowledgeBaseSeries(600, false, &rng);
  EXPECT_EQ(a.size(), 600u);
  ts::Series b = SampleKnowledgeBaseSeries(600, true, &rng);
  EXPECT_EQ(b.size(), 600u);
  // Different draws differ.
  bool differs = false;
  for (size_t i = 0; i < 600; ++i) {
    if (!ts::IsMissing(a[i]) && !ts::IsMissing(b[i]) && a[i] != b[i]) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(BuildRecordTest, ProducesLabelledRecord) {
  Rng rng(2);
  ts::Series series = SampleKnowledgeBaseSeries(700, false, &rng);
  Result<KnowledgeBaseRecord> record =
      BuildKnowledgeBaseRecord("unit", series, 5, /*grid_per_dim=*/1, 3);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_EQ(record->meta_features.size(),
            features::AggregatedMetaFeatures::FeatureNames().size());
  EXPECT_GE(record->best_algorithm, 0);
  EXPECT_LT(record->best_algorithm, static_cast<int>(kNumAlgorithms));
  EXPECT_EQ(record->algorithm_losses.size(), kNumAlgorithms);
  // The winner actually has the lowest loss.
  double best =
      record->algorithm_losses[static_cast<size_t>(record->best_algorithm)];
  for (double loss : record->algorithm_losses) EXPECT_GE(loss, best);
}

TEST(BuildRecordTest, RejectsUndersizedSplit) {
  Rng rng(4);
  ts::Series series = SampleKnowledgeBaseSeries(100, false, &rng);
  EXPECT_FALSE(BuildKnowledgeBaseRecord("x", series, 20, 1, 5).ok());
}

TEST(BuildKnowledgeBaseTest, SmallBaseBuilds) {
  KnowledgeBaseOptions opt;
  opt.n_synthetic = 5;
  opt.n_real_like = 1;
  opt.grid_per_dim = 1;
  opt.series_length = 700;
  opt.seed = 11;
  Result<KnowledgeBase> kb = BuildKnowledgeBase(opt);
  ASSERT_TRUE(kb.ok()) << kb.status();
  EXPECT_GE(kb->size(), 4u);
  for (const auto& r : kb->records()) {
    EXPECT_FALSE(r.dataset_name.empty());
  }
}

TEST(BuildKnowledgeBaseTest, ThreadCountDoesNotChangeRecords) {
  // Dataset sampling happens before the parallel region and labelling uses
  // per-record seeds, so the base must be identical at any thread count.
  std::vector<KnowledgeBase> bases;
  for (size_t num_threads : {1u, 3u}) {
    KnowledgeBaseOptions opt;
    opt.n_synthetic = 4;
    opt.n_real_like = 1;
    opt.grid_per_dim = 1;
    opt.series_length = 700;
    opt.seed = 11;
    opt.num_threads = num_threads;
    Result<KnowledgeBase> kb = BuildKnowledgeBase(opt);
    ASSERT_TRUE(kb.ok()) << kb.status();
    bases.push_back(std::move(*kb));
  }
  ASSERT_EQ(bases[0].size(), bases[1].size());
  for (size_t i = 0; i < bases[0].size(); ++i) {
    const KnowledgeBaseRecord& a = bases[0].records()[i];
    const KnowledgeBaseRecord& b = bases[1].records()[i];
    EXPECT_EQ(a.dataset_name, b.dataset_name);
    EXPECT_EQ(a.best_algorithm, b.best_algorithm);
    ASSERT_EQ(a.algorithm_losses.size(), b.algorithm_losses.size());
    for (size_t k = 0; k < a.algorithm_losses.size(); ++k) {
      EXPECT_DOUBLE_EQ(a.algorithm_losses[k], b.algorithm_losses[k]);
    }
    EXPECT_EQ(a.best_configs, b.best_configs);
  }
}

TEST(KnowledgeBaseCsvTest, SaveLoadRoundTrip) {
  KnowledgeBase kb;
  KnowledgeBaseRecord r;
  r.dataset_name = "syn_0";
  r.meta_features = {1.5, -2.25, 0.0};
  r.best_algorithm = 3;
  r.algorithm_losses = {1, 2, 3, 0.5, 4, 5};
  kb.Add(r);
  r.dataset_name = "syn_1";
  r.best_algorithm = 0;
  kb.Add(r);

  std::string path = std::filesystem::temp_directory_path() / "fedfc_kb.csv";
  ASSERT_TRUE(kb.SaveCsv(path).ok());
  Result<KnowledgeBase> back = KnowledgeBase::LoadCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ(back->records()[0].dataset_name, "syn_0");
  EXPECT_EQ(back->records()[0].best_algorithm, 3);
  EXPECT_EQ(back->records()[0].meta_features, r.meta_features);
  EXPECT_EQ(back->records()[1].best_algorithm, 0);
  std::remove(path.c_str());
}

TEST(KnowledgeBaseCsvTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(KnowledgeBase::LoadCsv("/nonexistent/kb.csv").ok());
}

}  // namespace
}  // namespace fedfc::automl
