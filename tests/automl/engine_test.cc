#include "automl/engine.h"

#include <gtest/gtest.h>

#include "automl/fed_client.h"
#include "data/generators.h"
#include "fl/transport.h"
#include "ml/tree/random_forest.h"

namespace fedfc::automl {
namespace {

std::vector<ts::Series> MakeSplits(size_t n_clients, size_t per_client,
                                   uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec spec;
  spec.length = n_clients * per_client;
  spec.level = 10.0;
  spec.seasonalities = {{24.0, 2.0, 0.0}};
  spec.noise_std = 0.2;
  spec.ar_coefficient = 0.6;
  ts::Series series = data::GenerateSignal(spec, &rng);
  Result<std::vector<ts::Series>> splits =
      ts::SplitIntoClients(series, static_cast<int>(n_clients));
  return *splits;
}

std::unique_ptr<fl::Server> MakeServer(const std::vector<ts::Series>& splits,
                                       uint64_t seed) {
  std::vector<std::shared_ptr<fl::Client>> clients;
  std::vector<size_t> sizes;
  for (size_t j = 0; j < splits.size(); ++j) {
    ForecastClient::Options opt;
    opt.seed = seed + j;
    sizes.push_back(splits[j].size());
    clients.push_back(std::make_shared<ForecastClient>(
        "c" + std::to_string(j), splits[j], opt));
  }
  return std::make_unique<fl::Server>(
      std::make_unique<fl::InProcessTransport>(clients), sizes);
}

/// A pre-trained meta-model over a trivially learnable KB so the engine's
/// meta-learning path can run without the expensive offline build.
MetaModel MakeTrainedMetaModel() {
  KnowledgeBase kb;
  Rng rng(99);
  size_t width = features::AggregatedMetaFeatures::FeatureNames().size();
  for (size_t i = 0; i < 40; ++i) {
    KnowledgeBaseRecord r;
    r.dataset_name = "stub_" + std::to_string(i);
    r.meta_features.resize(width);
    for (double& v : r.meta_features) v = rng.Normal();
    r.best_algorithm = static_cast<int>(i % kNumAlgorithms);
    r.algorithm_losses.assign(kNumAlgorithms, 1.0);
    r.algorithm_losses[static_cast<size_t>(r.best_algorithm)] = 0.1;
    kb.Add(std::move(r));
  }
  ml::ForestConfig cfg;
  cfg.n_trees = 15;
  MetaModel model(std::make_unique<ml::RandomForestClassifier>(cfg));
  Rng train_rng(100);
  EXPECT_TRUE(model.Train(kb, &train_rng).ok());
  return model;
}

EngineOptions FastOptions() {
  EngineOptions opt;
  opt.max_iterations = 6;
  opt.time_budget_seconds = 60.0;  // Iteration-bounded in tests.
  opt.bo.n_candidates = 64;
  opt.seed = 5;
  return opt;
}

TEST(EngineTest, FullPipelineProducesReport) {
  std::vector<ts::Series> splits = MakeSplits(4, 150, 1);
  auto server = MakeServer(splits, 2);
  MetaModel meta = MakeTrainedMetaModel();
  FedForecasterEngine engine(&meta, FastOptions());
  Result<EngineReport> report = engine.Run(server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->iterations, 6u);
  EXPECT_GT(report->best_valid_loss, 0.0);
  EXPECT_GT(report->test_loss, 0.0);
  EXPECT_EQ(report->recommended.size(), 3u);
  EXPECT_FALSE(report->global_model_blob.empty());
  EXPECT_GT(report->transport.messages, 0u);
  EXPECT_FALSE(report->loss_history.empty());
}

TEST(EngineTest, GlobalModelReconstructs) {
  std::vector<ts::Series> splits = MakeSplits(3, 150, 3);
  auto server = MakeServer(splits, 4);
  MetaModel meta = MakeTrainedMetaModel();
  FedForecasterEngine engine(&meta, FastOptions());
  Result<EngineReport> report = engine.Run(server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  Result<std::unique_ptr<ml::Regressor>> model =
      FedForecasterEngine::GlobalModel(*report);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_FALSE((*model)->Name().empty());
}

TEST(EngineTest, RandomSearchModeSearchesAllAlgorithms) {
  std::vector<ts::Series> splits = MakeSplits(3, 150, 5);
  auto server = MakeServer(splits, 6);
  EngineOptions opt = FastOptions();
  opt.strategy = SearchStrategy::kRandom;
  opt.use_meta_model = false;
  FedForecasterEngine engine(nullptr, opt);
  Result<EngineReport> report = engine.Run(server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->recommended.size(), kNumAlgorithms);
}

TEST(EngineTest, FeatureSelectionShrinksSchema) {
  std::vector<ts::Series> splits = MakeSplits(3, 200, 7);
  auto server = MakeServer(splits, 8);
  EngineOptions opt = FastOptions();
  opt.strategy = SearchStrategy::kRandom;
  opt.use_meta_model = false;
  opt.feature_selection = true;
  opt.feature_coverage = 0.6;  // Aggressive cut to force a visible effect.
  FedForecasterEngine engine(nullptr, opt);
  Result<EngineReport> report = engine.Run(server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->spec.selected_features.empty());
  features::FeatureEngineeringSpec unselected = report->spec;
  unselected.selected_features.clear();
  EXPECT_LT(report->spec.selected_features.size(),
            features::FeatureSchema(unselected).size());
}

TEST(EngineTest, TimeBudgetStopsTheLoop) {
  std::vector<ts::Series> splits = MakeSplits(3, 150, 9);
  auto server = MakeServer(splits, 10);
  EngineOptions opt = FastOptions();
  opt.max_iterations = 0;
  opt.time_budget_seconds = 0.3;
  opt.strategy = SearchStrategy::kRandom;
  opt.use_meta_model = false;
  FedForecasterEngine engine(nullptr, opt);
  Result<EngineReport> report = engine.Run(server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->iterations, 1u);
  EXPECT_LT(report->elapsed_seconds, 20.0);
}

TEST(EngineTest, NumThreadsDoesNotChangeLosses) {
  // The parallel broadcast gathers replies into index-ordered slots, so the
  // whole engine run — every aggregated loss, the chosen configuration, the
  // global model — must be identical at any thread count.
  std::vector<ts::Series> splits = MakeSplits(4, 150, 13);
  MetaModel meta = MakeTrainedMetaModel();
  std::vector<EngineReport> reports;
  for (size_t num_threads : {1u, 4u}) {
    auto server = MakeServer(splits, 14);
    EngineOptions opt = FastOptions();
    opt.num_threads = num_threads;
    FedForecasterEngine engine(&meta, opt);
    Result<EngineReport> report = engine.Run(server.get());
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(server->num_threads(), num_threads);
    reports.push_back(std::move(*report));
  }
  ASSERT_EQ(reports.size(), 2u);
  const EngineReport& seq = reports[0];
  const EngineReport& par = reports[1];
  ASSERT_EQ(seq.loss_history.size(), par.loss_history.size());
  for (size_t i = 0; i < seq.loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.loss_history[i], par.loss_history[i]) << "round " << i;
  }
  EXPECT_DOUBLE_EQ(seq.best_valid_loss, par.best_valid_loss);
  EXPECT_DOUBLE_EQ(seq.test_loss, par.test_loss);
  EXPECT_EQ(seq.best_config.algorithm, par.best_config.algorithm);
  ASSERT_EQ(seq.global_model_blob.size(), par.global_model_blob.size());
  for (size_t i = 0; i < seq.global_model_blob.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.global_model_blob[i], par.global_model_blob[i]);
  }
}

TEST(EngineTest, ExplicitRoundPolicyMatchesDefaultAtEveryThreadCount) {
  // The acceptance contract of the round-orchestration refactor: with full
  // participation and no retries — spelled out explicitly — every engine
  // output is bit-identical to the default (legacy-broadcast) configuration,
  // sequentially and under a thread pool, and an unused retry budget on a
  // reliable transport changes nothing either.
  std::vector<ts::Series> splits = MakeSplits(4, 150, 17);
  MetaModel meta = MakeTrainedMetaModel();
  auto run = [&](fl::RoundPolicy policy, size_t num_threads) {
    auto server = MakeServer(splits, 18);
    EngineOptions opt = FastOptions();
    opt.round = policy;
    opt.num_threads = num_threads;
    FedForecasterEngine engine(&meta, opt);
    Result<EngineReport> report = engine.Run(server.get());
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };
  fl::RoundPolicy explicit_legacy;
  explicit_legacy.participation_fraction = 1.0;
  explicit_legacy.max_retries = 0;
  fl::RoundPolicy with_retry_budget;
  with_retry_budget.max_retries = 2;
  EngineReport baseline = run(fl::RoundPolicy{}, 1);
  for (const fl::RoundPolicy& policy : {explicit_legacy, with_retry_budget}) {
    for (size_t num_threads : {1u, 4u}) {
      EngineReport report = run(policy, num_threads);
      ASSERT_EQ(baseline.loss_history.size(), report.loss_history.size());
      for (size_t i = 0; i < baseline.loss_history.size(); ++i) {
        EXPECT_DOUBLE_EQ(baseline.loss_history[i], report.loss_history[i]);
      }
      EXPECT_DOUBLE_EQ(baseline.best_valid_loss, report.best_valid_loss);
      EXPECT_DOUBLE_EQ(baseline.test_loss, report.test_loss);
      EXPECT_EQ(baseline.best_config.algorithm, report.best_config.algorithm);
      ASSERT_EQ(baseline.global_model_blob.size(),
                report.global_model_blob.size());
      for (size_t i = 0; i < baseline.global_model_blob.size(); ++i) {
        EXPECT_DOUBLE_EQ(baseline.global_model_blob[i],
                         report.global_model_blob[i]);
      }
      // Same traffic: the typed codecs leave the wire bytes unchanged.
      EXPECT_EQ(baseline.transport.messages, report.transport.messages);
      EXPECT_EQ(baseline.transport.bytes_to_clients,
                report.transport.bytes_to_clients);
      EXPECT_EQ(baseline.transport.bytes_to_server,
                report.transport.bytes_to_server);
    }
  }
}

TEST(EngineTest, PartialParticipationRunsAndIsSeedReproducible) {
  std::vector<ts::Series> splits = MakeSplits(6, 120, 19);
  auto run = [&]() {
    auto server = MakeServer(splits, 20);
    EngineOptions opt = FastOptions();
    opt.strategy = SearchStrategy::kRandom;
    opt.use_meta_model = false;
    opt.round.participation_fraction = 0.5;
    FedForecasterEngine engine(nullptr, opt);
    Result<EngineReport> report = engine.Run(server.get());
    EXPECT_TRUE(report.ok()) << report.status();
    return std::move(*report);
  };
  EngineReport a = run();
  EngineReport b = run();
  EXPECT_EQ(a.iterations, 6u);
  EXPECT_FALSE(a.loss_history.empty());
  // Sampling is seeded from EngineOptions::seed: identical runs, identical
  // sampled cohorts, identical losses.
  ASSERT_EQ(a.loss_history.size(), b.loss_history.size());
  for (size_t i = 0; i < a.loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.loss_history[i], b.loss_history[i]);
  }
  EXPECT_DOUBLE_EQ(a.test_loss, b.test_loss);
  // Fewer sampled clients per round means less traffic than full
  // participation would generate for the same round count.
  EXPECT_GT(a.transport.messages, 0u);
}

TEST(EngineTest, LossHistoryBestIsReportedBest) {
  std::vector<ts::Series> splits = MakeSplits(3, 150, 11);
  auto server = MakeServer(splits, 12);
  MetaModel meta = MakeTrainedMetaModel();
  FedForecasterEngine engine(&meta, FastOptions());
  Result<EngineReport> report = engine.Run(server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  double best = report->loss_history.front();
  for (double l : report->loss_history) best = std::min(best, l);
  EXPECT_DOUBLE_EQ(best, report->best_valid_loss);
}

}  // namespace
}  // namespace fedfc::automl
