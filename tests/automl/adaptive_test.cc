#include "automl/adaptive.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc::automl {
namespace {

AdaptiveForecaster::Options FastOptions() {
  AdaptiveForecaster::Options opt;
  opt.engine.use_meta_model = false;
  opt.engine.max_iterations = 4;
  opt.engine.time_budget_seconds = 30.0;
  opt.engine.seed = 3;
  opt.drift.threshold = 8.0;
  opt.drift.min_samples = 10;
  return opt;
}

std::vector<ts::Series> SeasonalClients(size_t n_clients, size_t per_client,
                                        double level, uint64_t seed) {
  Rng rng(seed);
  std::vector<ts::Series> out;
  for (size_t c = 0; c < n_clients; ++c) {
    std::vector<double> v(per_client);
    for (size_t t = 0; t < per_client; ++t) {
      v[t] = level +
             2.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 24.0) +
             rng.Normal(0.0, 0.2);
    }
    out.emplace_back(std::move(v), 0, 3600);
  }
  return out;
}

TEST(AdaptiveTest, InitializeFitsGlobalModel) {
  AdaptiveForecaster adaptive(nullptr, FastOptions());
  ASSERT_TRUE(adaptive.Initialize(SeasonalClients(3, 150, 10.0, 1)).ok());
  EXPECT_EQ(adaptive.n_clients(), 3u);
  EXPECT_EQ(adaptive.n_retunes(), 0u);
  EXPECT_GT(adaptive.report().best_valid_loss, 0.0);
}

TEST(AdaptiveTest, ObserveBeforeInitializeFails) {
  AdaptiveForecaster adaptive(nullptr, FastOptions());
  EXPECT_EQ(adaptive.ObserveStep({1.0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptiveTest, RejectsWrongClientCount) {
  AdaptiveForecaster adaptive(nullptr, FastOptions());
  ASSERT_TRUE(adaptive.Initialize(SeasonalClients(3, 150, 10.0, 2)).ok());
  EXPECT_FALSE(adaptive.ObserveStep({1.0, 2.0}).ok());
}

TEST(AdaptiveTest, StationaryStreamDoesNotRetune) {
  AdaptiveForecaster adaptive(nullptr, FastOptions());
  std::vector<ts::Series> clients = SeasonalClients(3, 150, 10.0, 3);
  ASSERT_TRUE(adaptive.Initialize(clients).ok());
  Rng rng(4);
  for (int step = 0; step < 40; ++step) {
    std::vector<double> values(3);
    for (size_t j = 0; j < 3; ++j) {
      double t = 150.0 + step;
      values[j] = 10.0 + 2.0 * std::sin(2.0 * std::numbers::pi * t / 24.0) +
                  rng.Normal(0.0, 0.2);
    }
    Result<AdaptiveForecaster::StepResult> r = adaptive.ObserveStep(values);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_GE(r->federated_loss, 0.0);
  }
  EXPECT_EQ(adaptive.n_retunes(), 0u);
}

TEST(AdaptiveTest, RegimeShiftTriggersRetune) {
  AdaptiveForecaster adaptive(nullptr, FastOptions());
  ASSERT_TRUE(adaptive.Initialize(SeasonalClients(3, 150, 10.0, 5)).ok());
  Rng rng(6);
  bool retuned = false;
  // Warm the detector on the old regime, then jump the level 10 -> 40.
  for (int step = 0; step < 80 && !retuned; ++step) {
    double level = step < 15 ? 10.0 : 40.0;
    std::vector<double> values(3);
    for (size_t j = 0; j < 3; ++j) {
      values[j] = level + rng.Normal(0.0, 0.2);
    }
    Result<AdaptiveForecaster::StepResult> r = adaptive.ObserveStep(values);
    ASSERT_TRUE(r.ok()) << r.status();
    retuned = r->retuned;
  }
  EXPECT_TRUE(retuned);
  EXPECT_GE(adaptive.n_retunes(), 1u);
}

}  // namespace
}  // namespace fedfc::automl
