// Regression tests for degenerate inputs to the GP surrogate — the
// bayesopt/gp sites hardened during the -Wconversion/-Wsign-conversion
// cleanup (see docs/STATIC_ANALYSIS.md): single-observation fits, constant
// targets (zero target variance), duplicated training points (SPD jitter
// escalation), and expected improvement at vanishing variance.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "automl/bayesopt/gp.h"
#include "core/matrix.h"

namespace fedfc::automl {
namespace {

TEST(GpEdgeTest, PredictBeforeFitReturnsPrior) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.fitted());
  const auto pred = gp.Predict({0.5});
  EXPECT_DOUBLE_EQ(pred.mean, 0.0);
  EXPECT_GT(pred.variance, 0.0);
}

TEST(GpEdgeTest, FitRejectsBadShapes) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit(Matrix(), {}).ok());
  EXPECT_FALSE(gp.Fit(Matrix(2, 1), {1.0}).ok());
}

TEST(GpEdgeTest, SingleObservationFitInterpolates) {
  // n = 1 drives every n-derived loop bound through its minimum.
  GaussianProcess gp;
  Matrix x(1, 1);
  x(0, 0) = 0.5;
  ASSERT_TRUE(gp.Fit(x, {3.0}).ok());
  EXPECT_EQ(gp.n_observations(), 1u);
  const auto at_train = gp.Predict({0.5});
  EXPECT_NEAR(at_train.mean, 3.0, 1e-6);
  const auto far = gp.Predict({0.0});
  EXPECT_GT(far.variance, at_train.variance);
}

TEST(GpEdgeTest, ConstantTargetsDoNotDivideByZero) {
  // StdDev(y) == 0: standardization must fall back to the 1e-12 floor, and
  // predictions must come back finite at the shared mean.
  GaussianProcess gp;
  Matrix x(3, 1);
  x(0, 0) = 0.1;
  x(1, 0) = 0.5;
  x(2, 0) = 0.9;
  ASSERT_TRUE(gp.Fit(x, {2.0, 2.0, 2.0}).ok());
  const auto pred = gp.Predict({0.5});
  EXPECT_TRUE(std::isfinite(pred.mean));
  EXPECT_TRUE(std::isfinite(pred.variance));
  EXPECT_NEAR(pred.mean, 2.0, 1e-6);
}

TEST(GpEdgeTest, DuplicatedPointsSurviveViaJitter) {
  // Identical rows make the kernel matrix singular up to noise; the
  // escalating-jitter path must still produce a usable factorization.
  GaussianProcess gp;
  Matrix x(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    x(i, 0) = 0.25;
    x(i, 1) = 0.75;
  }
  ASSERT_TRUE(gp.Fit(x, {1.0, 1.1, 0.9, 1.0}).ok());
  const auto pred = gp.Predict({0.25, 0.75});
  EXPECT_TRUE(std::isfinite(pred.mean));
  EXPECT_GE(pred.variance, 0.0);
}

TEST(GpEdgeTest, ExpectedImprovementEdges) {
  // Zero variance: EI reduces to max(best - mean, 0).
  EXPECT_NEAR(ExpectedImprovement(1.0, 0.0, 2.0), 1.0, 1e-6);
  EXPECT_NEAR(ExpectedImprovement(3.0, 0.0, 2.0), 0.0, 1e-6);
  // Positive variance gives strictly positive EI even above the incumbent.
  EXPECT_GT(ExpectedImprovement(3.0, 1.0, 2.0), 0.0);
  // EI grows with variance at fixed mean.
  EXPECT_GT(ExpectedImprovement(2.0, 4.0, 2.0),
            ExpectedImprovement(2.0, 1.0, 2.0));
}

TEST(GpEdgeTest, KernelValueAtZeroDistanceIsSignalVariance) {
  for (KernelKind kind : {KernelKind::kMatern52, KernelKind::kRbf}) {
    EXPECT_NEAR(KernelValue(kind, 0.0, 0.3, 2.5), 2.5, 1e-12);
    // Monotone decay in squared distance.
    EXPECT_GT(KernelValue(kind, 0.01, 0.3, 2.5), KernelValue(kind, 0.04, 0.3, 2.5));
  }
}

}  // namespace
}  // namespace fedfc::automl
