#include "automl/fed_client.h"

#include <gtest/gtest.h>

#include "automl/model_io.h"
#include "data/generators.h"
#include "fl/server.h"
#include "fl/transport.h"

namespace fedfc::automl {
namespace {

ts::Series TestSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec spec;
  spec.length = n;
  spec.level = 10.0;
  spec.seasonalities = {{24.0, 2.0, 0.0}};
  spec.noise_std = 0.2;
  spec.ar_coefficient = 0.5;
  return data::GenerateSignal(spec, &rng);
}

fl::Payload SpecConfigRequest(const features::FeatureEngineeringSpec& spec,
                              const Configuration& config) {
  fl::Payload request;
  request.SetTensor("spec", spec.ToTensor());
  request.SetTensor("config", config.ToTensor());
  return request;
}

features::FeatureEngineeringSpec BasicSpec() {
  features::FeatureEngineeringSpec spec;
  spec.n_lags = 4;
  spec.seasonal_periods = {24.0};
  return spec;
}

Configuration LassoConfig() {
  Configuration c;
  c.algorithm = AlgorithmId::kLasso;
  c.numeric["alpha"] = 1e-3;
  c.categorical["selection"] = "cyclic";
  return c;
}

TEST(ForecastClientTest, MetaFeaturesTask) {
  ForecastClient client("c0", TestSeries(500, 1), ForecastClient::Options{});
  Result<fl::Payload> reply = client.Handle(tasks::kMetaFeatures, fl::Payload());
  ASSERT_TRUE(reply.ok());
  Result<std::vector<double>> tensor = reply->GetTensor("meta_features");
  ASSERT_TRUE(tensor.ok());
  Result<features::ClientMetaFeatures> mf =
      features::ClientMetaFeatures::FromTensor(*tensor);
  ASSERT_TRUE(mf.ok());
  // Meta-features cover only the train+valid head (test tail excluded).
  EXPECT_DOUBLE_EQ(mf->n_instances, 400.0);
}

TEST(ForecastClientTest, NumExamplesExcludesTestTail) {
  ForecastClient client("c0", TestSeries(500, 2), ForecastClient::Options{});
  EXPECT_EQ(client.num_examples(), 400u);
}

TEST(ForecastClientTest, FitEvaluateReturnsFiniteLoss) {
  ForecastClient client("c0", TestSeries(500, 3), ForecastClient::Options{});
  Result<fl::Payload> reply = client.Handle(
      tasks::kFitEvaluate, SpecConfigRequest(BasicSpec(), LassoConfig()));
  ASSERT_TRUE(reply.ok()) << reply.status();
  Result<double> loss = reply->GetDouble("valid_loss");
  ASSERT_TRUE(loss.ok());
  EXPECT_GE(*loss, 0.0);
  EXPECT_GT(*reply->GetInt("n_valid"), 0);
}

TEST(ForecastClientTest, FeatureImportanceMatchesSchemaWidth) {
  ForecastClient client("c0", TestSeries(500, 4), ForecastClient::Options{});
  fl::Payload request;
  request.SetTensor("spec", BasicSpec().ToTensor());
  Result<fl::Payload> reply = client.Handle(tasks::kFeatureImportance, request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  Result<std::vector<double>> imp = reply->GetTensor("importances");
  ASSERT_TRUE(imp.ok());
  EXPECT_EQ(imp->size(), features::FeatureSchema(BasicSpec()).size());
}

TEST(ForecastClientTest, FitFinalProducesLoadableModel) {
  ForecastClient client("c0", TestSeries(500, 5), ForecastClient::Options{});
  Result<fl::Payload> reply = client.Handle(
      tasks::kFitFinal, SpecConfigRequest(BasicSpec(), LassoConfig()));
  ASSERT_TRUE(reply.ok()) << reply.status();
  Result<std::vector<double>> blob = reply->GetTensor("model_blob");
  ASSERT_TRUE(blob.ok());
  Result<std::unique_ptr<ml::Regressor>> model =
      DeserializeModel(LassoConfig(), *blob);
  ASSERT_TRUE(model.ok());
}

TEST(ForecastClientTest, EvaluateModelOnTestTail) {
  ForecastClient client("c0", TestSeries(500, 6), ForecastClient::Options{});
  Result<fl::Payload> fit = client.Handle(
      tasks::kFitFinal, SpecConfigRequest(BasicSpec(), LassoConfig()));
  ASSERT_TRUE(fit.ok());
  fl::Payload request = SpecConfigRequest(BasicSpec(), LassoConfig());
  request.SetTensor("model_blob", *fit->GetTensor("model_blob"));
  Result<fl::Payload> eval = client.Handle(tasks::kEvaluateModel, request);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GE(*eval->GetDouble("test_loss"), 0.0);
  EXPECT_GT(*eval->GetInt("n_test"), 0);
}

TEST(ForecastClientTest, XgbModelsFlowThroughSerialization) {
  ForecastClient client("c0", TestSeries(500, 7), ForecastClient::Options{});
  Configuration xgb;
  xgb.algorithm = AlgorithmId::kXgb;
  xgb.numeric = {{"n_estimators", 8},
                 {"max_depth", 3},
                 {"learning_rate", 0.2},
                 {"reg_lambda", 1.0},
                 {"subsample", 1.0}};
  Result<fl::Payload> fit =
      client.Handle(tasks::kFitFinal, SpecConfigRequest(BasicSpec(), xgb));
  ASSERT_TRUE(fit.ok()) << fit.status();
  fl::Payload request = SpecConfigRequest(BasicSpec(), xgb);
  request.SetTensor("model_blob", *fit->GetTensor("model_blob"));
  Result<fl::Payload> eval = client.Handle(tasks::kEvaluateModel, request);
  ASSERT_TRUE(eval.ok()) << eval.status();
}

TEST(ForecastClientTest, UnknownTaskIsUnimplemented) {
  ForecastClient client("c0", TestSeries(200, 8), ForecastClient::Options{});
  EXPECT_EQ(client.Handle("bogus", fl::Payload()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(ForecastClientTest, MissingPayloadKeysRejected) {
  ForecastClient client("c0", TestSeries(200, 9), ForecastClient::Options{});
  EXPECT_FALSE(client.Handle(tasks::kFitEvaluate, fl::Payload()).ok());
  fl::Payload only_spec;
  only_spec.SetTensor("spec", BasicSpec().ToTensor());
  EXPECT_FALSE(client.Handle(tasks::kFitEvaluate, only_spec).ok());
}

TEST(ForecastClientTest, WorksThroughServerBroadcast) {
  std::vector<std::shared_ptr<fl::Client>> clients;
  std::vector<size_t> sizes;
  for (int j = 0; j < 3; ++j) {
    ts::Series s = TestSeries(400, static_cast<uint64_t>(10 + j));
    sizes.push_back(s.size());
    clients.push_back(std::make_shared<ForecastClient>(
        "c" + std::to_string(j), s, ForecastClient::Options{}));
  }
  fl::Server server(std::make_unique<fl::InProcessTransport>(clients), sizes);
  Result<std::vector<fl::ClientReply>> replies = server.Broadcast(
      tasks::kFitEvaluate, SpecConfigRequest(BasicSpec(), LassoConfig()));
  ASSERT_TRUE(replies.ok());
  EXPECT_EQ(replies->size(), 3u);
  Result<double> global = fl::Server::AggregateScalar(*replies, "valid_loss");
  ASSERT_TRUE(global.ok());
  EXPECT_GE(*global, 0.0);
}

}  // namespace
}  // namespace fedfc::automl
