#include "automl/nbeats_baseline.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"

namespace fedfc::automl {
namespace {

ml::NBeatsConfig TinyConfig() {
  ml::NBeatsConfig cfg;
  cfg.n_generic_blocks = 1;
  cfg.n_trend_blocks = 1;
  cfg.n_seasonal_blocks = 1;
  cfg.generic_width = 16;
  cfg.trend_width = 16;
  cfg.seasonal_width = 16;
  cfg.n_trunk_layers = 2;
  cfg.batch_size = 64;
  cfg.learning_rate = 3e-3;
  cfg.epochs = 10;
  return cfg;
}

std::vector<ts::Series> SineSplits(size_t n_clients, size_t per_client) {
  std::vector<ts::Series> out;
  for (size_t c = 0; c < n_clients; ++c) {
    std::vector<double> v(per_client);
    for (size_t t = 0; t < per_client; ++t) {
      size_t global_t = c * per_client + t;
      v[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(global_t) / 16.0);
    }
    out.emplace_back(std::move(v), 0, 86400);
  }
  return out;
}

TEST(NBeatsClientTest, RoundReturnsParamsAndLoss) {
  NBeatsClient::Options opt;
  opt.nbeats = TinyConfig();
  opt.lookback = 16;
  NBeatsClient client("n0", SineSplits(1, 200)[0], opt);
  Result<fl::Payload> reply = client.Handle(tasks::kNBeatsRound, fl::Payload());
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_TRUE(reply->Has("params"));
  EXPECT_GE(*reply->GetDouble("train_loss"), 0.0);
}

TEST(NBeatsClientTest, EvaluateUsesTestTail) {
  NBeatsClient::Options opt;
  opt.nbeats = TinyConfig();
  opt.lookback = 16;
  NBeatsClient client("n0", SineSplits(1, 200)[0], opt);
  ASSERT_TRUE(client.Handle(tasks::kNBeatsRound, fl::Payload()).ok());
  Result<fl::Payload> eval =
      client.Handle(tasks::kNBeatsEvaluate, fl::Payload());
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GE(*eval->GetDouble("test_loss"), 0.0);
  EXPECT_GT(*eval->GetInt("n_test"), 0);
}

TEST(NBeatsClientTest, UnknownTaskRejected) {
  NBeatsClient::Options opt;
  opt.nbeats = TinyConfig();
  NBeatsClient client("n0", SineSplits(1, 100)[0], opt);
  EXPECT_EQ(client.Handle("bogus", fl::Payload()).status().code(),
            StatusCode::kUnimplemented);
}

TEST(FedNBeatsTest, RunsRoundsAndEvaluates) {
  FedNBeatsBaseline::Options opt;
  opt.nbeats = TinyConfig();
  opt.nbeats.epochs = 2;
  opt.lookback = 16;
  opt.epochs_per_round = 2;
  opt.max_rounds = 3;
  opt.time_budget_seconds = 60.0;
  FedNBeatsBaseline baseline(opt);
  Result<NBeatsReport> report = baseline.Run(SineSplits(3, 150));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rounds, 3u);
  EXPECT_GE(report->test_loss, 0.0);
  EXPECT_LT(report->test_loss, 2.0);  // Better than exploding.
}

TEST(FedNBeatsTest, RejectsEmptyClientList) {
  FedNBeatsBaseline baseline(FedNBeatsBaseline::Options{});
  EXPECT_FALSE(baseline.Run({}).ok());
}

TEST(ConsolidatedNBeatsTest, LearnsSine) {
  std::vector<double> v(600);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 16.0);
  }
  ts::Series series(std::move(v), 0, 86400);
  ml::NBeatsConfig cfg = TinyConfig();
  cfg.epochs = 25;
  Result<NBeatsReport> report = TrainConsolidatedNBeats(
      series, cfg, /*lookback=*/16, /*time_budget_seconds=*/30.0,
      /*test_fraction=*/0.2, /*seed=*/1);
  ASSERT_TRUE(report.ok()) << report.status();
  // Naive last-value forecaster scores ~0.076 on this sine.
  EXPECT_LT(report->test_loss, 0.06);
}

TEST(ConsolidatedNBeatsTest, RejectsShortSeries) {
  ts::Series tiny({1, 2, 3, 4, 5}, 0, 86400);
  EXPECT_FALSE(
      TrainConsolidatedNBeats(tiny, TinyConfig(), 16, 1.0, 0.2, 1).ok());
}

}  // namespace
}  // namespace fedfc::automl
