#include "core/vec_math.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc {
namespace {

TEST(VecMathTest, DotAndNorms) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32);
  EXPECT_DOUBLE_EQ(NormL2({3, 4}), 5);
  EXPECT_DOUBLE_EQ(NormL1({-1, 2, -3}), 6);
}

TEST(VecMathTest, MomentsOfKnownData) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
}

TEST(VecMathTest, EmptyAndDegenerateInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Skewness({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(ExcessKurtosis({1.0, 2.0, 3.0}), 0.0);
}

TEST(VecMathTest, SkewnessSignMatchesDistributionShape) {
  // Right-skewed data has positive skewness.
  std::vector<double> right = {1, 1, 1, 2, 2, 3, 10};
  EXPECT_GT(Skewness(right), 0.5);
  std::vector<double> left = {-10, -3, -2, -2, -1, -1, -1};
  EXPECT_LT(Skewness(left), -0.5);
  std::vector<double> symmetric = {-2, -1, 0, 1, 2};
  EXPECT_NEAR(Skewness(symmetric), 0.0, 1e-12);
}

TEST(VecMathTest, KurtosisOfNormalSampleIsNearZero) {
  Rng rng(3);
  std::vector<double> v(20000);
  for (double& x : v) x = rng.Normal();
  EXPECT_NEAR(ExcessKurtosis(v), 0.0, 0.15);
}

TEST(VecMathTest, QuantileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
}

TEST(VecMathTest, PearsonCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> ny = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, ny), -1.0, 1e-12);
  std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant), 0.0);
}

TEST(VecMathTest, SoftmaxSumsToOneAndIsStable) {
  std::vector<double> p = Softmax({1000.0, 1000.0, 1000.0});
  EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-12);
  double total = 0.0;
  for (double v : Softmax({-3, 0, 5})) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(VecMathTest, LogSumExpMatchesDirectComputation) {
  std::vector<double> v = {0.1, 0.5, -0.3};
  double direct = std::log(std::exp(0.1) + std::exp(0.5) + std::exp(-0.3));
  EXPECT_NEAR(LogSumExp(v), direct, 1e-12);
}

TEST(VecMathTest, Argsort) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  std::vector<size_t> desc = ArgsortDescending(v);
  EXPECT_EQ(desc[0], 0u);
  EXPECT_EQ(desc[1], 2u);
  EXPECT_EQ(desc[2], 1u);
  std::vector<size_t> asc = ArgsortAscending(v);
  EXPECT_EQ(asc[0], 1u);
  EXPECT_EQ(asc[2], 0u);
}

TEST(VecMathTest, ArgsortIsStableForTies) {
  std::vector<double> v = {1.0, 1.0, 1.0};
  std::vector<size_t> asc = ArgsortAscending(v);
  EXPECT_EQ(asc[0], 0u);
  EXPECT_EQ(asc[1], 1u);
  EXPECT_EQ(asc[2], 2u);
}

TEST(VecMathTest, VectorArithmetic) {
  std::vector<double> a = {1, 2};
  std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(AddVec(a, b)[1], 6);
  EXPECT_DOUBLE_EQ(SubVec(b, a)[0], 2);
  EXPECT_DOUBLE_EQ(ScaleVec(a, 3)[1], 6);
  Axpy(2.0, b, &a);
  EXPECT_DOUBLE_EQ(a[0], 7);
  EXPECT_DOUBLE_EQ(a[1], 10);
}

TEST(VecMathTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5, 0, 1), 1);
  EXPECT_DOUBLE_EQ(Clamp(-5, 0, 1), 0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0, 1), 0.5);
}

}  // namespace
}  // namespace fedfc
