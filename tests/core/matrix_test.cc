#include "core/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fedfc {
namespace {

TEST(MatrixTest, InitializerListConstruction) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixTest, IdentityAndMultiply) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix prod = a.Multiply(Matrix::Identity(2));
  EXPECT_EQ(prod, a);
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.Transpose(), a);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a({{1, 2}, {3, 4}});
  std::vector<double> v = {1, 1};
  std::vector<double> out = a.MultiplyVector(v);
  EXPECT_DOUBLE_EQ(out[0], 3);
  EXPECT_DOUBLE_EQ(out[1], 7);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{1, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(a.Add(b)(1, 1), 5);
  EXPECT_DOUBLE_EQ(a.Subtract(b)(0, 0), 0);
  EXPECT_DOUBLE_EQ(a.Scale(2.0)(1, 0), 6);
}

TEST(MatrixTest, SelectRowsAndColumns) {
  Matrix a({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix rows = a.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(rows(0, 0), 7);
  EXPECT_DOUBLE_EQ(rows(1, 2), 3);
  Matrix cols = a.SelectColumns({1});
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols(2, 0), 8);
}

TEST(MatrixTest, WithInterceptColumn) {
  Matrix a({{2, 3}});
  Matrix x = a.WithInterceptColumn();
  EXPECT_EQ(x.cols(), 3u);
  EXPECT_DOUBLE_EQ(x(0, 0), 1);
  EXPECT_DOUBLE_EQ(x(0, 1), 2);
}

TEST(MatrixTest, ColumnAccessors) {
  Matrix a({{1, 2}, {3, 4}});
  std::vector<double> col = a.Column(1);
  EXPECT_DOUBLE_EQ(col[0], 2);
  EXPECT_DOUBLE_EQ(col[1], 4);
  a.SetColumn(0, {9, 8});
  EXPECT_DOUBLE_EQ(a(0, 0), 9);
  EXPECT_DOUBLE_EQ(a(1, 0), 8);
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  Matrix a({{4, 2}, {2, 3}});
  Result<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  // Check L L^T == A.
  Matrix recon = l->Multiply(l->Transpose());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-12);
    }
  }
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a({{1, 2}, {2, 1}});  // Indefinite.
  EXPECT_FALSE(CholeskyFactor(a).ok());
  Matrix rect(2, 3);
  EXPECT_FALSE(CholeskyFactor(rect).ok());
}

TEST(SolveSpdTest, SolvesKnownSystem) {
  Matrix a({{4, 2}, {2, 3}});
  std::vector<double> b = {10, 9};
  Result<std::vector<double>> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(4.0 * (*x)[0] + 2.0 * (*x)[1], 10.0, 1e-10);
  EXPECT_NEAR(2.0 * (*x)[0] + 3.0 * (*x)[1], 9.0, 1e-10);
}

TEST(SolveLinearTest, SolvesWithPivoting) {
  // Leading zero forces a pivot swap.
  Matrix a({{0, 2}, {3, 1}});
  std::vector<double> b = {4, 5};
  Result<std::vector<double>> x = SolveLinear(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
}

TEST(SolveLinearTest, DetectsSingular) {
  Matrix a({{1, 2}, {2, 4}});
  EXPECT_FALSE(SolveLinear(a, {1, 2}).ok());
}

TEST(LeastSquaresTest, RecoversExactCoefficients) {
  // y = 2 + 3x sampled without noise.
  Rng rng(1);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    double xv = rng.Uniform(-5, 5);
    x(i, 0) = 1.0;
    x(i, 1) = xv;
    y[i] = 2.0 + 3.0 * xv;
  }
  Result<std::vector<double>> beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 2.0, 1e-6);
  EXPECT_NEAR((*beta)[1], 3.0, 1e-6);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix x(2, 5);
  EXPECT_FALSE(LeastSquares(x, {1, 2}).ok());
}

}  // namespace
}  // namespace fedfc
