#include "core/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/result.h"

namespace fedfc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StreamOperatorPrintsToString) {
  std::ostringstream os;
  os << Status::IOError("disk");
  EXPECT_EQ(os.str(), "IOError: disk");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FEDFC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = []() -> Result<int> { return 5; };
  auto outer = [&]() -> Result<int> {
    FEDFC_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  ASSERT_TRUE(outer().ok());
  EXPECT_EQ(*outer(), 10);

  auto inner_fail = []() -> Result<int> { return Status::Internal("x"); };
  auto outer_fail = [&]() -> Result<int> {
    FEDFC_ASSIGN_OR_RETURN(int v, inner_fail());
    return v;
  };
  EXPECT_EQ(outer_fail().status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

}  // namespace
}  // namespace fedfc
