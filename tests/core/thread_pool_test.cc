#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fedfc {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(4);
  std::future<int> f = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SequentialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  // Submit on a sequential pool completes before returning.
  std::thread::id caller = std::this_thread::get_id();
  std::future<std::thread::id> f =
      pool.Submit([]() { return std::this_thread::get_id(); });
  EXPECT_EQ(f.get(), caller);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<size_t> concurrent(0), peak(0);
  pool.ParallelFor(16, [&](size_t) {
    size_t now = concurrent.fetch_add(1) + 1;
    size_t seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2u);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(32, [&](size_t i) {
      if (i == 3 || i == 20) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ThreadPoolTest, ParallelForContinuesAfterException) {
  ThreadPool pool(4);
  std::atomic<int> ran(0);
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  // Every index still executed; the pool remains usable.
  EXPECT_EQ(ran.load(), 16);
  std::future<int> f = pool.Submit([]() { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total(0);
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(ThreadPoolTest, ManyTasksFromManyCallers) {
  ThreadPool pool(4);
  std::vector<std::future<size_t>> futures;
  futures.reserve(100);
  for (size_t i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  size_t total = 0;
  for (auto& f : futures) total += f.get();
  size_t expected = 0;
  for (size_t i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      // fedfc-allow(result_discard): drain is asserted via `done`, not futures
      (void)pool.Submit([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
        return 0;
      });
    }
  }
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace fedfc
