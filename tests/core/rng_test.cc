#include "core/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/vec_math.h"

namespace fedfc {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Int(0, 1000000) == b.Int(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, IntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> v(50000);
  for (double& x : v) x = rng.Normal(2.0, 3.0);
  EXPECT_NEAR(Mean(v), 2.0, 0.1);
  EXPECT_NEAR(StdDev(v), 3.0, 0.1);
}

TEST(RngTest, SampleIsDistinctAndInRange) {
  Rng rng(5);
  std::vector<size_t> s = rng.Sample(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(5);
  std::vector<size_t> s = rng.Sample(10, 10);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, BootstrapHasCorrectSizeAndRange) {
  Rng rng(9);
  std::vector<size_t> b = rng.Bootstrap(50);
  EXPECT_EQ(b.size(), 50u);
  for (size_t v : b) EXPECT_LT(v, 50u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream should not replay the parent's continuation.
  Rng b(42);
  b.Uniform();  // Consume what Fork consumed.
  EXPECT_NE(child.Int(0, 1 << 30), b.Int(0, 1 << 30));
}

}  // namespace
}  // namespace fedfc
