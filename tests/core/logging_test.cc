#include "core/logging.h"

#include <gtest/gtest.h>

#include "core/matrix.h"
#include "ts/series.h"

namespace fedfc {
namespace {

TEST(LoggingTest, LevelThresholdRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  FEDFC_LOG(Debug) << "below threshold " << 42;
  FEDFC_LOG(Info) << "also below threshold";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  FEDFC_CHECK(1 + 1 == 2) << "never evaluated";
  FEDFC_DCHECK(true);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ FEDFC_CHECK(false) << "boom"; }, "Check failed");
}

TEST(ToStringTest, MatrixSummary) {
  Matrix m({{1, 2}, {3, 4}});
  std::string s = m.ToString();
  EXPECT_NE(s.find("2x2"), std::string::npos);
  EXPECT_NE(s.find("[1, 2]"), std::string::npos);
  // Truncation marker for big matrices.
  Matrix big(100, 2, 0.0);
  EXPECT_NE(big.ToString(3).find("..."), std::string::npos);
}

TEST(ToStringTest, SeriesSummary) {
  ts::Series s({1, 2, 3}, 0, 3600);
  std::string str = s.ToString();
  EXPECT_NE(str.find("n=3"), std::string::npos);
  EXPECT_NE(str.find("3600"), std::string::npos);
}

}  // namespace
}  // namespace fedfc
