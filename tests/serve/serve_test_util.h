#ifndef FEDFC_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define FEDFC_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "automl/model_io.h"
#include "core/logging.h"
#include "core/rng.h"
#include "fl/task_codec.h"

namespace fedfc::serve {

/// Spec whose engineered schema is exactly `width` lag columns — no trend,
/// time, or seasonal features — so serving tests can feed plain matrices.
inline features::FeatureEngineeringSpec PlainSpec(size_t width) {
  features::FeatureEngineeringSpec spec;
  spec.n_lags = width;
  spec.include_time_features = false;
  spec.include_trend_feature = false;
  return spec;
}

/// A fitted Huber artifact over a `width`-column schema. Different slopes
/// produce visibly different predictions, which is how the hot-swap tests
/// prove which version answered.
inline automl::ModelArtifact MakeTestArtifact(double slope, uint64_t seed,
                                              size_t width = 2) {
  automl::Configuration config;
  config.algorithm = automl::AlgorithmId::kHuber;
  config.categorical["epsilon"] = "1.35";
  config.numeric["alpha"] = 1e-4;

  Rng rng(seed);
  Matrix x(120, width);
  std::vector<double> y(120);
  for (size_t i = 0; i < 120; ++i) {
    for (size_t c = 0; c < width; ++c) x(i, c) = rng.Uniform(-2, 2);
    y[i] = slope * x(i, 0) + 0.5 * x(i, width - 1);
  }
  Result<std::unique_ptr<ml::Regressor>> model =
      automl::CreateRegressor(config);
  FEDFC_CHECK(model.ok());
  Rng fit_rng(seed + 1);
  FEDFC_CHECK((*model)->Fit(x, y, &fit_rng).ok());
  Result<std::vector<double>> blob = automl::SerializeModel(config, **model);
  FEDFC_CHECK(blob.ok());

  automl::ModelArtifact artifact;
  artifact.config = std::move(config);
  artifact.spec = PlainSpec(width);
  artifact.blob = std::move(*blob);
  return artifact;
}

/// Deterministic request rows: the same (rows, cols, seed) triple always
/// yields the same values, so expectations can be computed in-process.
inline fl::ForecastRequest MakeForecastRequest(size_t rows, size_t cols,
                                               uint64_t seed) {
  fl::ForecastRequest request;
  request.n_cols = static_cast<int64_t>(cols);
  request.rows.resize(rows * cols);
  Rng rng(seed);
  for (double& v : request.rows) v = rng.Uniform(-1.0, 1.0);
  return request;
}

/// The request's rows as a Matrix, for in-process reference predictions.
inline Matrix RequestMatrix(const fl::ForecastRequest& request) {
  const auto cols = static_cast<size_t>(request.n_cols);
  Matrix x(request.n_rows(), cols);
  for (size_t r = 0; r < request.n_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) x(r, c) = request.rows[r * cols + c];
  }
  return x;
}

/// Fresh per-test scratch directory, deleted on destruction. Tests inside
/// one binary run sequentially, so tag-keyed names cannot collide.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() / ("fedfc_" + tag))
                  .string()) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace fedfc::serve

#endif  // FEDFC_TESTS_SERVE_SERVE_TEST_UTIL_H_
