#include "serve/registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/crc32.h"
#include "serve_test_util.h"

namespace fedfc::serve {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Layout vocabulary (automl/model_io): version dirs and the MANIFEST codec.
// ---------------------------------------------------------------------------

TEST(RegistryLayoutTest, VersionDirRoundTrip) {
  EXPECT_EQ(automl::RegistryVersionDir(1), "v001");
  EXPECT_EQ(automl::RegistryVersionDir(42), "v042");
  EXPECT_EQ(automl::RegistryVersionDir(1234), "v1234");
  for (int version : {1, 7, 99, 100, 999, 1000, 123456}) {
    Result<int> parsed =
        automl::ParseRegistryVersionDir(automl::RegistryVersionDir(version));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(*parsed, version);
  }
}

TEST(RegistryLayoutTest, VersionDirRejectsNonCanonicalNames) {
  for (const char* name :
       {"", "v", "v0", "v000", "v-1", "v01", "v0007", "x001", "001", "v1x",
        "v 12", "v99999999999999999999", "v1.5"}) {
    EXPECT_FALSE(automl::ParseRegistryVersionDir(name).ok()) << name;
  }
}

TEST(RegistryLayoutTest, ManifestRoundTrip) {
  automl::RegistryManifest manifest;
  manifest.version = 12;
  manifest.file = "model.fpb";
  manifest.bytes = 123456789;
  manifest.crc32 = 0xDEADBEEF;
  Result<automl::RegistryManifest> parsed =
      automl::ParseRegistryManifest(automl::FormatRegistryManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->version, manifest.version);
  EXPECT_EQ(parsed->file, manifest.file);
  EXPECT_EQ(parsed->bytes, manifest.bytes);
  EXPECT_EQ(parsed->crc32, manifest.crc32);
}

TEST(RegistryLayoutTest, ManifestRejectsMalformedRecords) {
  const char* bad[] = {
      "",                                                 // Empty.
      "version: 1\nfile: m\nbytes: 10\n",                 // Missing crc32.
      "file: m\nversion: 1\nbytes: 10\ncrc32: 1\n",       // Wrong order.
      "version: x\nfile: m\nbytes: 10\ncrc32: 1\n",       // Non-numeric.
      "version: 1\nfile: m\nbytes: -2\ncrc32: 1\n",       // Negative count.
      "version: 0\nfile: m\nbytes: 10\ncrc32: 1\n",       // Version < 1.
      "version: 1\nfile: \nbytes: 10\ncrc32: 1\n",        // Empty file.
      "version:1\nfile: m\nbytes: 10\ncrc32: 1\n",        // Bad separator.
  };
  for (const char* text : bad) {
    EXPECT_FALSE(automl::ParseRegistryManifest(text).ok()) << text;
  }
}

// ---------------------------------------------------------------------------
// Publish / load.
// ---------------------------------------------------------------------------

TEST(ModelRegistryTest, EmptyOrMissingRootHasNoVersions) {
  TempDir dir("registry_empty");
  ModelRegistry registry(dir.path());  // Root not created yet.
  Result<int> latest = registry.LatestVersion();
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(*latest, 0);
  EXPECT_EQ(registry.LoadLatest().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Load(1).status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, PublishLoadRoundTrip) {
  TempDir dir("registry_roundtrip");
  ModelRegistry registry(dir.path());
  automl::ModelArtifact artifact = MakeTestArtifact(2.0, 1);

  Result<int> version = registry.Publish(artifact);
  ASSERT_TRUE(version.ok()) << version.status();
  EXPECT_EQ(*version, 1);
  EXPECT_TRUE(fs::is_regular_file(fs::path(dir.path()) / "v001" / "MANIFEST"));

  Result<automl::ModelArtifact> loaded = registry.Load(1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->config.algorithm, artifact.config.algorithm);
  EXPECT_EQ(loaded->spec.n_lags, artifact.spec.n_lags);
  EXPECT_EQ(loaded->spec.include_time_features,
            artifact.spec.include_time_features);
  EXPECT_EQ(loaded->spec.include_trend_feature,
            artifact.spec.include_trend_feature);
  ASSERT_EQ(loaded->blob.size(), artifact.blob.size());
  for (size_t i = 0; i < artifact.blob.size(); ++i) {
    EXPECT_EQ(loaded->blob[i], artifact.blob[i]) << "blob[" << i << "]";
  }

  // The loaded artifact predicts bit-identically to the published one.
  Result<automl::Forecaster> original =
      automl::Forecaster::FromArtifact(artifact);
  Result<automl::Forecaster> restored =
      automl::Forecaster::FromArtifact(*loaded);
  ASSERT_TRUE(original.ok() && restored.ok());
  fl::ForecastRequest request = MakeForecastRequest(16, 2, 7);
  Result<std::vector<double>> a = original->Forecast(RequestMatrix(request));
  Result<std::vector<double>> b = restored->Forecast(RequestMatrix(request));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(ModelRegistryTest, VersionsAdvanceAndLoadLatestPicksNewest) {
  TempDir dir("registry_advance");
  ModelRegistry registry(dir.path());
  for (int expected = 1; expected <= 3; ++expected) {
    Result<int> version =
        registry.Publish(MakeTestArtifact(static_cast<double>(expected),
                                          static_cast<uint64_t>(expected)));
    ASSERT_TRUE(version.ok()) << version.status();
    EXPECT_EQ(*version, expected);
  }
  Result<std::pair<int, automl::ModelArtifact>> latest = registry.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(latest->first, 3);
  // The newest artifact is the slope-3 one, not a blend or an older version.
  automl::ModelArtifact expected = MakeTestArtifact(3.0, 3);
  ASSERT_EQ(latest->second.blob.size(), expected.blob.size());
  for (size_t i = 0; i < expected.blob.size(); ++i) {
    EXPECT_EQ(latest->second.blob[i], expected.blob[i]);
  }
}

TEST(ModelRegistryTest, UncommittedDirIsInvisibleButNeverReused) {
  TempDir dir("registry_uncommitted");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.Publish(MakeTestArtifact(1.0, 1)).ok());
  // An aborted publish: the version directory exists, the MANIFEST does not.
  fs::create_directories(fs::path(dir.path()) / "v002");

  Result<int> latest = registry.LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1);  // v002 is not committed.
  EXPECT_EQ(registry.Load(2).status().code(), StatusCode::kNotFound);

  // The next publish skips the aborted slot instead of resurrecting it.
  Result<int> version = registry.Publish(MakeTestArtifact(2.0, 2));
  ASSERT_TRUE(version.ok()) << version.status();
  EXPECT_EQ(*version, 3);
  latest = registry.LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 3);
}

TEST(ModelRegistryTest, ForeignDirectoriesAreIgnored) {
  TempDir dir("registry_foreign");
  ModelRegistry registry(dir.path());
  fs::create_directories(fs::path(dir.path()) / "staging");
  fs::create_directories(fs::path(dir.path()) / "v01");  // Non-canonical.
  Result<int> latest = registry.LatestVersion();
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(*latest, 0);
  Result<int> version = registry.Publish(MakeTestArtifact(1.0, 1));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1);
}

// ---------------------------------------------------------------------------
// Corruption: every mismatch between MANIFEST and artifact is a typed error.
// ---------------------------------------------------------------------------

TEST(ModelRegistryTest, TruncatedArtifactRejected) {
  TempDir dir("registry_truncated");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.Publish(MakeTestArtifact(1.0, 1)).ok());
  const fs::path file = fs::path(dir.path()) / "v001" / "model.fpb";
  const auto size = fs::file_size(file);
  ASSERT_GT(size, 1u);
  fs::resize_file(file, size - 1);  // The torn write.
  Status status = registry.Load(1).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("torn write"), std::string::npos) << status;
}

TEST(ModelRegistryTest, BitFlippedArtifactFailsCrc) {
  TempDir dir("registry_bitflip");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.Publish(MakeTestArtifact(1.0, 1)).ok());
  const fs::path file = fs::path(dir.path()) / "v001" / "model.fpb";
  {
    std::fstream io(file, std::ios::binary | std::ios::in | std::ios::out);
    io.seekg(12);
    char byte = 0;
    io.get(byte);
    io.seekp(12);
    io.put(static_cast<char>(byte ^ 0x40));  // One flipped bit.
  }
  Status status = registry.Load(1).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("CRC32"), std::string::npos) << status;
}

TEST(ModelRegistryTest, ManifestNamingNonLocalFileRejected) {
  TempDir dir("registry_nonlocal");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.Publish(MakeTestArtifact(1.0, 1)).ok());
  automl::RegistryManifest manifest;
  manifest.version = 1;
  manifest.file = "../v001/model.fpb";  // Escapes the version directory.
  manifest.bytes = fs::file_size(fs::path(dir.path()) / "v001" / "model.fpb");
  manifest.crc32 = 0;
  std::ofstream(fs::path(dir.path()) / "v001" / "MANIFEST")
      << automl::FormatRegistryManifest(manifest);
  Status status = registry.Load(1).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-local"), std::string::npos) << status;
}

TEST(ModelRegistryTest, ManifestVersionMismatchRejected) {
  TempDir dir("registry_vmismatch");
  ModelRegistry registry(dir.path());
  ASSERT_TRUE(registry.Publish(MakeTestArtifact(1.0, 1)).ok());
  const fs::path manifest_path = fs::path(dir.path()) / "v001" / "MANIFEST";
  std::ifstream in(manifest_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  Result<automl::RegistryManifest> manifest =
      automl::ParseRegistryManifest(text);
  ASSERT_TRUE(manifest.ok());
  manifest->version = 2;  // Claims to be another version.
  std::ofstream(manifest_path) << automl::FormatRegistryManifest(*manifest);
  Status status = registry.Load(1).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("claims version"), std::string::npos)
      << status;
}

}  // namespace
}  // namespace fedfc::serve
