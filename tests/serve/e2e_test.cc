#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "automl/engine.h"
#include "automl/fed_client.h"
#include "data/generators.h"
#include "fl/transport.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace fedfc::serve {
namespace {

std::vector<ts::Series> MakeSplits(size_t n_clients, size_t per_client,
                                   uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec signal;
  signal.length = n_clients * per_client;
  signal.level = 10.0;
  signal.seasonalities = {{24.0, 2.0, 0.0}};
  signal.noise_std = 0.2;
  signal.ar_coefficient = 0.6;
  ts::Series series = data::GenerateSignal(signal, &rng);
  Result<std::vector<ts::Series>> splits =
      ts::SplitIntoClients(series, static_cast<int>(n_clients));
  return *splits;
}

std::unique_ptr<fl::Server> MakeServer(const std::vector<ts::Series>& splits,
                                       uint64_t seed) {
  std::vector<std::shared_ptr<fl::Client>> clients;
  std::vector<size_t> sizes;
  for (size_t j = 0; j < splits.size(); ++j) {
    automl::ForecastClient::Options opt;
    opt.seed = seed + j;
    sizes.push_back(splits[j].size());
    clients.push_back(std::make_shared<automl::ForecastClient>(
        "c" + std::to_string(j), splits[j], opt));
  }
  return std::make_unique<fl::Server>(
      std::make_unique<fl::InProcessTransport>(clients), sizes);
}

TEST(ServeE2eTest, EngineTrainsPublishesAndServerAnswersBitExact) {
  // The full hand-off: the engine trains over federated clients, publishes
  // the winning model into a registry root, fedfc_serve-style machinery
  // loads it back, and a network client's forecasts equal the in-process
  // global model's predictions bit-for-bit.
  TempDir dir("serve_e2e_registry");
  std::vector<ts::Series> splits = MakeSplits(3, 150, 21);
  auto fl_server = MakeServer(splits, 22);

  automl::EngineOptions options;
  options.strategy = automl::SearchStrategy::kRandom;
  options.use_meta_model = false;
  options.max_iterations = 2;
  options.time_budget_seconds = 60.0;
  options.seed = 5;
  options.publish_dir = dir.path();
  automl::FedForecasterEngine engine(nullptr, options);
  Result<automl::EngineReport> report = engine.Run(fl_server.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->published_version, 1);

  // The registry holds exactly what the engine reported.
  ModelRegistry registry(dir.path());
  Result<std::pair<int, automl::ModelArtifact>> latest = registry.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(latest->first, 1);
  const automl::ModelArtifact& artifact = latest->second;
  EXPECT_EQ(artifact.config.algorithm, report->best_config.algorithm);
  ASSERT_EQ(artifact.blob.size(), report->global_model_blob.size());
  for (size_t i = 0; i < artifact.blob.size(); ++i) {
    EXPECT_EQ(artifact.blob[i], report->global_model_blob[i]) << "blob " << i;
  }

  // In-process reference: the reconstructed global model applied to one
  // client's engineered features under the unified spec.
  Result<std::unique_ptr<ml::Regressor>> global =
      automl::FedForecasterEngine::GlobalModel(*report);
  ASSERT_TRUE(global.ok()) << global.status();
  Result<features::EngineeredData> engineered =
      features::EngineerFeatures(splits[0], report->spec);
  ASSERT_TRUE(engineered.ok()) << engineered.status();
  const size_t n_rows = std::min<size_t>(engineered->x.rows(), 16);
  ASSERT_GT(n_rows, 0u);
  std::vector<double> expected = (*global)->Predict(engineered->x);

  // Serving side: load from the registry, install, answer over loopback.
  ForecastService service;
  ASSERT_TRUE(service.Install(latest->first, artifact).ok());
  ASSERT_EQ(service.Snapshot()->forecaster.n_features(),
            static_cast<size_t>(engineered->x.cols()));
  Result<net::Listener> listener = net::Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ServeOptions serve_options;
  serve_options.poll_interval_ms = 25;
  ForecastServer server(std::move(*listener), &service, serve_options);
  ASSERT_TRUE(server.Start().ok());

  Result<ServeClient> client =
      ServeClient::Connect("127.0.0.1", server.port(), 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  fl::ForecastRequest request;
  request.n_cols = static_cast<int64_t>(engineered->x.cols());
  request.rows.reserve(n_rows * engineered->x.cols());
  for (size_t r = 0; r < n_rows; ++r) {
    for (size_t c = 0; c < engineered->x.cols(); ++c) {
      request.rows.push_back(engineered->x(r, c));
    }
  }
  Result<fl::ForecastReply> reply = client->Forecast(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->model_version, 1);
  ASSERT_EQ(reply->predictions.size(), n_rows);
  for (size_t r = 0; r < n_rows; ++r) {
    EXPECT_EQ(reply->predictions[r], expected[r]) << "row " << r;
  }

  server.RequestStop();
  EXPECT_TRUE(server.Wait().ok());

  // A second training run publishes the next version, never overwriting v1.
  auto second_server = MakeServer(splits, 22);
  automl::FedForecasterEngine second(nullptr, options);
  Result<automl::EngineReport> second_report = second.Run(second_server.get());
  ASSERT_TRUE(second_report.ok()) << second_report.status();
  EXPECT_EQ(second_report->published_version, 2);
  Result<int> latest_version = registry.LatestVersion();
  ASSERT_TRUE(latest_version.ok());
  EXPECT_EQ(*latest_version, 2);
}

}  // namespace
}  // namespace fedfc::serve
