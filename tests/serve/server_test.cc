#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "fl/payload.h"
#include "serve/client.h"
#include "serve_test_util.h"

namespace fedfc::serve {
namespace {

ServeOptions FastServeOptions() {
  ServeOptions options;
  options.poll_interval_ms = 25;
  options.io_timeout_ms = 2000;
  options.batch_timeout_ms = 2;
  options.max_connections = 4;
  options.registry_poll_ms = 25;
  return options;
}

/// One ForecastServer on its own internal pool; Start in the constructor
/// (from the test's main thread — Start must not run inside another pool),
/// RequestStop + Wait in the destructor.
class ServeHarness {
 public:
  explicit ServeHarness(ForecastService* service,
                        ServeOptions options = FastServeOptions(),
                        const ModelRegistry* registry = nullptr) {
    Result<net::Listener> listener = net::Listener::ListenTcp("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    server_ =
        std::make_unique<ForecastServer>(std::move(*listener), service, options);
    if (registry != nullptr) server_->WatchRegistry(registry);
    EXPECT_TRUE(server_->Start().ok());
  }

  ~ServeHarness() {
    server_->RequestStop();
    EXPECT_TRUE(server_->Wait().ok());
  }

  [[nodiscard]] uint16_t port() const { return server_->port(); }
  [[nodiscard]] ForecastServer& server() { return *server_; }

  [[nodiscard]] ServeClient Connect() {
    Result<ServeClient> client =
        ServeClient::Connect("127.0.0.1", port(), 2000);
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(*client);
  }

 private:
  std::unique_ptr<ForecastServer> server_;
};

/// In-process reference predictions for a request against an artifact.
std::vector<double> ExpectedPredictions(const automl::ModelArtifact& artifact,
                                        const fl::ForecastRequest& request) {
  Result<automl::Forecaster> forecaster =
      automl::Forecaster::FromArtifact(artifact);
  EXPECT_TRUE(forecaster.ok()) << forecaster.status();
  Result<std::vector<double>> predictions =
      forecaster->Forecast(RequestMatrix(request));
  EXPECT_TRUE(predictions.ok()) << predictions.status();
  return *predictions;
}

TEST(ForecastServerTest, PingReportsTheLiveVersion) {
  ForecastService service;
  ServeHarness harness(&service);
  ServeClient client = harness.Connect();

  Result<fl::PingReply> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->model_version, 0);  // Nothing installed yet.

  ASSERT_TRUE(service.Install(7, MakeTestArtifact(1.0, 1)).ok());
  pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->model_version, 7);
}

TEST(ForecastServerTest, ForecastMatchesInProcessPredictionBitExact) {
  ForecastService service;
  automl::ModelArtifact artifact = MakeTestArtifact(2.0, 1);
  ASSERT_TRUE(service.Install(1, artifact).ok());
  ServeHarness harness(&service);
  ServeClient client = harness.Connect();

  fl::ForecastRequest request = MakeForecastRequest(16, 2, 11);
  std::vector<double> expected = ExpectedPredictions(artifact, request);
  Result<fl::ForecastReply> reply = client.Forecast(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->model_version, 1);
  ASSERT_EQ(reply->predictions.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reply->predictions[i], expected[i]) << "row " << i;
  }
}

TEST(ForecastServerTest, ConcurrentBatchedRepliesBitIdenticalToSequential) {
  // Several connections fire distinct requests at once so the batcher
  // coalesces them; every reply must still equal the request's own
  // sequential in-process prediction bit-for-bit (batching only ever
  // changes latency, never values).
  ForecastService service;
  automl::ModelArtifact artifact = MakeTestArtifact(2.0, 1);
  ASSERT_TRUE(service.Install(1, artifact).ok());
  ServeOptions options = FastServeOptions();
  options.batch_timeout_ms = 5;  // Wide linger to force real coalescing.
  ServeHarness harness(&service, options);

  constexpr size_t kConnections = 4;
  constexpr size_t kRequestsEach = 8;
  std::vector<std::string> failures(kConnections);
  {
    ThreadPool pool(kConnections);
    std::vector<std::future<void>> jobs;
    for (size_t c = 0; c < kConnections; ++c) {
      jobs.push_back(pool.Submit([&, c] {
        Result<ServeClient> client =
            ServeClient::Connect("127.0.0.1", harness.port(), 2000);
        if (!client.ok()) {
          failures[c] = client.status().ToString();
          return;
        }
        for (size_t i = 0; i < kRequestsEach; ++i) {
          fl::ForecastRequest request =
              MakeForecastRequest(1 + i % 7, 2, 100 * c + i);
          std::vector<double> expected =
              ExpectedPredictions(artifact, request);
          Result<fl::ForecastReply> reply = client->Forecast(request);
          if (!reply.ok()) {
            failures[c] = reply.status().ToString();
            return;
          }
          if (reply->model_version != 1 || reply->predictions != expected) {
            failures[c] = "reply mismatch on request " + std::to_string(i);
            return;
          }
        }
      }));
    }
    for (auto& job : jobs) job.get();
  }
  for (size_t c = 0; c < kConnections; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "connection " << c << ": "
                                     << failures[c];
  }
}

TEST(ForecastServerTest, WrongWidthFailsAloneWithoutPoisoningTheConnection) {
  ForecastService service;
  automl::ModelArtifact artifact = MakeTestArtifact(2.0, 1);
  ASSERT_TRUE(service.Install(1, artifact).ok());
  ServeHarness harness(&service);
  ServeClient client = harness.Connect();

  fl::ForecastRequest bad = MakeForecastRequest(4, 3, 5);  // Model wants 2.
  Result<fl::ForecastReply> reply = client.Forecast(bad);
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reply.status().message().find("expects 2"), std::string::npos)
      << reply.status();

  fl::ForecastRequest good = MakeForecastRequest(4, 2, 5);
  reply = client.Forecast(good);
  ASSERT_TRUE(reply.ok()) << reply.status();  // Same connection still works.
  EXPECT_EQ(reply->predictions, ExpectedPredictions(artifact, good));
}

TEST(ForecastServerTest, OversizedRequestRejectedByRowCap) {
  ForecastService service;
  ASSERT_TRUE(service.Install(1, MakeTestArtifact(2.0, 1)).ok());
  ServeOptions options = FastServeOptions();
  options.max_rows_per_request = 8;
  ServeHarness harness(&service, options);
  ServeClient client = harness.Connect();
  Result<fl::ForecastReply> reply =
      client.Forecast(MakeForecastRequest(9, 2, 5));
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reply.status().message().find("cap"), std::string::npos);
  EXPECT_TRUE(client.Forecast(MakeForecastRequest(8, 2, 5)).ok());
}

TEST(ForecastServerTest, NoModelYetIsFailedPreconditionUntilInstall) {
  ForecastService service;
  ServeHarness harness(&service);
  ServeClient client = harness.Connect();

  fl::ForecastRequest request = MakeForecastRequest(4, 2, 5);
  Result<fl::ForecastReply> reply = client.Forecast(request);
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reply.status().message().find("no model"), std::string::npos);

  automl::ModelArtifact artifact = MakeTestArtifact(2.0, 1);
  ASSERT_TRUE(service.Install(1, artifact).ok());
  reply = client.Forecast(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->predictions, ExpectedPredictions(artifact, request));
}

TEST(ForecastServerTest, UnknownTaskReportsTheHandledVocabulary) {
  ForecastService service;
  ServeHarness harness(&service);
  Result<net::Socket> socket =
      net::Socket::ConnectTcp("127.0.0.1", harness.port(), 2000);
  ASSERT_TRUE(socket.ok()) << socket.status();

  net::Frame request;
  request.type = net::FrameType::kRequest;
  request.task = "nope";
  request.body = fl::Payload().Serialize();
  ASSERT_TRUE(net::WriteFrame(*socket, request, 2000).ok());
  Result<net::Frame> reply = net::ReadFrame(*socket, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, net::FrameType::kError);
  Status status = net::ErrorFrameStatus(*reply);
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_NE(status.message().find("forecast"), std::string::npos) << status;
}

TEST(ForecastServerTest, MalformedFrameGetsErrorReplyThenConnectionDrop) {
  ForecastService service;
  ServeHarness harness(&service);
  Result<net::Socket> socket =
      net::Socket::ConnectTcp("127.0.0.1", harness.port(), 2000);
  ASSERT_TRUE(socket.ok()) << socket.status();

  // 32 bytes of garbage: a frame header with a bad magic. The server must
  // answer with the typed decode error (best effort) and drop the
  // connection, because the byte stream is no longer trustworthy.
  std::vector<uint8_t> garbage(32, 0xAB);
  ASSERT_TRUE(socket->SendAll(garbage.data(), garbage.size(), 2000).ok());
  Result<net::Frame> reply = net::ReadFrame(*socket, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, net::FrameType::kError);
  EXPECT_FALSE(net::ErrorFrameStatus(*reply).ok());

  // After the error reply the server closes its side: the next read sees
  // EOF, not a hung connection.
  Result<net::Frame> after = net::ReadFrame(*socket, 2000);
  EXPECT_FALSE(after.ok());
}

TEST(ForecastServerTest, ShutdownFrameStopsTheWholeServer) {
  ForecastService service;
  ASSERT_TRUE(service.Install(1, MakeTestArtifact(1.0, 1)).ok());
  Result<net::Listener> listener = net::Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ForecastServer server(std::move(*listener), &service, FastServeOptions());
  ASSERT_TRUE(server.Start().ok());

  Result<ServeClient> client =
      ServeClient::Connect("127.0.0.1", server.port(), 2000);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->SendShutdown().ok());
  EXPECT_TRUE(server.Wait().ok());  // Every loop exits; no job hangs.
}

TEST(ForecastServerTest, RequestStopUnblocksServe) {
  // The signal-handler path: RequestStop is just an atomic store, and the
  // serve loops must return promptly once it lands. Start runs on this
  // thread (calling it from a pool task would run the jobs inline —
  // core/thread_pool.h); only the join moves to the helper pool.
  ForecastService service;
  Result<net::Listener> listener = net::Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  ForecastServer server(std::move(*listener), &service, FastServeOptions());
  ASSERT_TRUE(server.Start().ok());
  ThreadPool pool(2);
  std::future<Status> done = pool.Submit([&server] { return server.Wait(); });
  server.RequestStop();
  Status status = done.get();
  EXPECT_TRUE(status.ok()) << status;
}

TEST(ForecastServerTest, HotSwapUnderLoadEveryReplyWhollyOneVersion) {
  // The tentpole guarantee: while v2 is installed mid-traffic, every reply
  // is computed wholly by v1 or wholly by v2 — proven by bit-comparing each
  // reply against the per-version expectation — versions never regress
  // within a connection, and no request fails.
  automl::ModelArtifact v1 = MakeTestArtifact(1.0, 1);
  automl::ModelArtifact v2 = MakeTestArtifact(5.0, 2);
  ForecastService service;
  ASSERT_TRUE(service.Install(1, v1).ok());
  ServeHarness harness(&service);

  constexpr size_t kConnections = 3;
  constexpr size_t kMaxRequests = 2000;
  std::vector<std::string> failures(kConnections);
  std::vector<bool> saw_v2(kConnections, false);
  {
    ThreadPool pool(kConnections);
    std::vector<std::future<void>> jobs;
    for (size_t c = 0; c < kConnections; ++c) {
      jobs.push_back(pool.Submit([&, c] {
        fl::ForecastRequest request = MakeForecastRequest(4, 2, 50 + c);
        const std::vector<double> expect_v1 = ExpectedPredictions(v1, request);
        const std::vector<double> expect_v2 = ExpectedPredictions(v2, request);
        Result<ServeClient> client =
            ServeClient::Connect("127.0.0.1", harness.port(), 2000);
        if (!client.ok()) {
          failures[c] = client.status().ToString();
          return;
        }
        int64_t last_version = 0;
        for (size_t i = 0; i < kMaxRequests; ++i) {
          Result<fl::ForecastReply> reply = client->Forecast(request);
          if (!reply.ok()) {
            failures[c] = reply.status().ToString();
            return;
          }
          if (reply->model_version < last_version) {
            failures[c] = "version rolled back";
            return;
          }
          last_version = reply->model_version;
          const std::vector<double>& expected =
              reply->model_version == 1 ? expect_v1 : expect_v2;
          if (reply->predictions != expected) {
            failures[c] = "reply not wholly v" +
                          std::to_string(reply->model_version);
            return;
          }
          if (reply->model_version == 2) {
            saw_v2[c] = true;
            return;  // Observed the swap; done.
          }
        }
        failures[c] = "never observed v2";
      }));
    }
    // Let every connection get at least one v1 reply in, then swap.
    {
      ServeClient warmup = harness.Connect();
      Result<fl::ForecastReply> first =
          warmup.Forecast(MakeForecastRequest(2, 2, 99));
      ASSERT_TRUE(first.ok()) << first.status();
      EXPECT_EQ(first->model_version, 1);
    }
    ASSERT_TRUE(service.Install(2, v2).ok());
    for (auto& job : jobs) job.get();
  }
  for (size_t c = 0; c < kConnections; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "connection " << c << ": "
                                     << failures[c];
    EXPECT_TRUE(saw_v2[c]) << "connection " << c;
  }
}

TEST(ForecastServerTest, WatcherHotSwapsFromTheRegistry) {
  // End-to-end hot-swap path: publish v1, start a watching server against
  // an empty service, and observe the watcher install v1 and then v2 after
  // a later publish — all through the polled registry, no direct Install.
  TempDir dir("serve_watcher");
  ModelRegistry registry(dir.path());
  automl::ModelArtifact v1 = MakeTestArtifact(1.0, 1);
  automl::ModelArtifact v2 = MakeTestArtifact(3.0, 2);
  ASSERT_TRUE(registry.Publish(v1).ok());

  ForecastService service;
  ServeHarness harness(&service, FastServeOptions(), &registry);
  ServeClient client = harness.Connect();

  auto ping_until_version = [&client](int64_t want) {
    for (int i = 0; i < 4000; ++i) {
      Result<fl::PingReply> pong = client.Ping();
      ASSERT_TRUE(pong.ok()) << pong.status();
      if (pong->model_version == want) return;
    }
    FAIL() << "watcher never installed v" << want;
  };
  ping_until_version(1);

  fl::ForecastRequest request = MakeForecastRequest(4, 2, 13);
  Result<fl::ForecastReply> reply = client.Forecast(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->model_version, 1);
  EXPECT_EQ(reply->predictions, ExpectedPredictions(v1, request));

  ASSERT_TRUE(registry.Publish(v2).ok());
  ping_until_version(2);
  reply = client.Forecast(request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->model_version, 2);
  EXPECT_EQ(reply->predictions, ExpectedPredictions(v2, request));
}

TEST(ForecastServerTest, BadPublishedVersionNeverInterruptsServing) {
  // A corrupt v2 lands in the registry: the watcher must keep serving v1
  // and pick up a good v3 afterwards.
  TempDir dir("serve_bad_publish");
  ModelRegistry registry(dir.path());
  automl::ModelArtifact v1 = MakeTestArtifact(1.0, 1);
  ASSERT_TRUE(registry.Publish(v1).ok());

  ForecastService service;
  ServeHarness harness(&service, FastServeOptions(), &registry);
  ServeClient client = harness.Connect();
  for (int i = 0; i < 4000 && service.CurrentVersion() != 1; ++i) {
    ASSERT_TRUE(client.Ping().ok());
  }
  ASSERT_EQ(service.CurrentVersion(), 1);

  automl::ModelArtifact corrupt = MakeTestArtifact(2.0, 2);
  corrupt.blob.resize(1);  // Truncated global model.
  ASSERT_TRUE(registry.Publish(corrupt).ok());
  automl::ModelArtifact v3 = MakeTestArtifact(4.0, 3);
  ASSERT_TRUE(registry.Publish(v3).ok());

  for (int i = 0; i < 4000 && service.CurrentVersion() != 3; ++i) {
    // v1 keeps answering while the watcher retries past the bad v2.
    fl::ForecastRequest request = MakeForecastRequest(2, 2, 17);
    Result<fl::ForecastReply> reply = client.Forecast(request);
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_NE(reply->model_version, 2);
  }
  EXPECT_EQ(service.CurrentVersion(), 3);
}

}  // namespace
}  // namespace fedfc::serve
