#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "serve_test_util.h"

namespace fedfc::serve {
namespace {

TEST(ForecastServiceTest, EmptyServiceHasNoModel) {
  ForecastService service;
  EXPECT_EQ(service.Snapshot(), nullptr);
  EXPECT_EQ(service.CurrentVersion(), 0);
}

TEST(ForecastServiceTest, InstallPublishesSnapshot) {
  ForecastService service;
  automl::ModelArtifact artifact = MakeTestArtifact(2.0, 1);
  ASSERT_TRUE(service.Install(1, artifact).ok());
  EXPECT_EQ(service.CurrentVersion(), 1);

  std::shared_ptr<const LoadedModel> snapshot = service.Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1);
  EXPECT_EQ(snapshot->forecaster.n_features(), 2u);

  // The installed model predicts bit-identically to one built directly.
  Result<automl::Forecaster> direct = automl::Forecaster::FromArtifact(artifact);
  ASSERT_TRUE(direct.ok());
  Matrix x = RequestMatrix(MakeForecastRequest(8, 2, 3));
  Result<std::vector<double>> a = snapshot->forecaster.Forecast(x);
  Result<std::vector<double>> b = direct->Forecast(x);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) EXPECT_EQ((*a)[i], (*b)[i]);
}

TEST(ForecastServiceTest, VersionsAreStrictlyMonotonic) {
  ForecastService service;
  ASSERT_TRUE(service.Install(3, MakeTestArtifact(1.0, 1)).ok());
  EXPECT_FALSE(service.Install(3, MakeTestArtifact(2.0, 2)).ok());  // Same.
  EXPECT_FALSE(service.Install(2, MakeTestArtifact(2.0, 2)).ok());  // Older.
  EXPECT_FALSE(service.Install(0, MakeTestArtifact(2.0, 2)).ok());  // Bad.
  EXPECT_EQ(service.CurrentVersion(), 3);
  EXPECT_TRUE(service.Install(4, MakeTestArtifact(2.0, 2)).ok());
  EXPECT_EQ(service.CurrentVersion(), 4);
}

TEST(ForecastServiceTest, BadArtifactNeverReplacesTheLiveModel) {
  ForecastService service;
  ASSERT_TRUE(service.Install(1, MakeTestArtifact(2.0, 1)).ok());
  automl::ModelArtifact corrupt = MakeTestArtifact(3.0, 2);
  corrupt.blob[0] = std::numeric_limits<double>::quiet_NaN();  // Bit flip.
  Status installed = service.Install(2, corrupt);
  EXPECT_EQ(installed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.CurrentVersion(), 1);  // v1 still serving.
  EXPECT_NE(service.Snapshot(), nullptr);
}

TEST(ForecastServiceTest, HotSwapUnderConcurrentLoadNeverBlendsVersions) {
  // Readers hammer Snapshot+Forecast while the main thread installs newer
  // versions. Every observed prediction must equal the expectation computed
  // for exactly the snapshot's version — a blended or half-installed model
  // would break the bit-equality — and each reader's observed versions must
  // be non-decreasing.
  constexpr int kVersions = 5;
  constexpr size_t kReaders = 4;
  const Matrix x = RequestMatrix(MakeForecastRequest(4, 2, 9));

  std::vector<automl::ModelArtifact> artifacts;
  std::vector<std::vector<double>> expected(kVersions + 1);
  for (int v = 1; v <= kVersions; ++v) {
    artifacts.push_back(
        MakeTestArtifact(static_cast<double>(v), static_cast<uint64_t>(v)));
    Result<automl::Forecaster> forecaster =
        automl::Forecaster::FromArtifact(artifacts.back());
    ASSERT_TRUE(forecaster.ok());
    Result<std::vector<double>> predictions = forecaster->Forecast(x);
    ASSERT_TRUE(predictions.ok());
    expected[static_cast<size_t>(v)] = std::move(*predictions);
  }

  ForecastService service;
  ASSERT_TRUE(service.Install(1, artifacts[0]).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  ThreadPool pool(kReaders);
  std::vector<std::future<void>> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.push_back(pool.Submit([&] {
      int last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const LoadedModel> snapshot = service.Snapshot();
        if (snapshot == nullptr) continue;
        if (snapshot->version < last_version) {
          mismatches.fetch_add(1);  // Rollback observed.
          return;
        }
        last_version = snapshot->version;
        Result<std::vector<double>> got = snapshot->forecaster.Forecast(x);
        const std::vector<double>& want =
            expected[static_cast<size_t>(snapshot->version)];
        if (!got.ok() || *got != want) {
          mismatches.fetch_add(1);
          return;
        }
      }
    }));
  }

  for (int v = 2; v <= kVersions; ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(service.Install(v, artifacts[static_cast<size_t>(v - 1)]).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true, std::memory_order_relaxed);
  for (auto& reader : readers) reader.get();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.CurrentVersion(), kVersions);
}

}  // namespace
}  // namespace fedfc::serve
