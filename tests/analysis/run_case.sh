#!/usr/bin/env sh
# Compile-fail harness for the clang Thread Safety Analysis gate
# (docs/STATIC_ANALYSIS.md, "Compile-time race detection"). Each case is a
# tiny TU against src/core/sync.h, checked in two compiles:
#
#   1. WITHOUT -Wthread-safety: every case (negative ones included) must
#      compile clean — proving a later failure comes from the analysis, not
#      from a syntax error that would "pass" the harness vacuously.
#   2. WITH -Wthread-safety -Werror=thread-safety: a `fire` case must FAIL
#      (the analysis caught the seeded race) and a `clean` case must pass.
#
# Usage: run_case.sh <c++-compiler> <src-include-dir> <case.cc> fire|clean
set -eu

cxx="$1"
include_dir="$2"
case_file="$3"
mode="$4"

base_flags="-std=c++20 -fsyntax-only -I$include_dir"
tsa_flags="-Wthread-safety -Werror=thread-safety"

if ! "$cxx" $base_flags "$case_file"; then
  echo "FAIL: $case_file does not compile even without -Wthread-safety" >&2
  exit 1
fi

case "$mode" in
  fire)
    if "$cxx" $base_flags $tsa_flags "$case_file" 2>/dev/null; then
      echo "FAIL: -Wthread-safety did not fire on $case_file" >&2
      exit 1
    fi
    echo "ok: analysis rejected $case_file"
    ;;
  clean)
    "$cxx" $base_flags $tsa_flags "$case_file"
    echo "ok: analysis accepted $case_file"
    ;;
  *)
    echo "usage: $0 <c++-compiler> <src-include-dir> <case.cc> fire|clean" >&2
    exit 2
    ;;
esac
