// Negative case: calling a FEDFC_REQUIRES(mu) function without holding mu
// must be rejected — the caller-side half of the locking contract.

#include "core/sync.h"

class Queue {
 public:
  void PushLocked(int v) FEDFC_REQUIRES(mu_) { last_ = v; }

  // BUG: calls the REQUIRES(mu_) helper without taking mu_ first.
  void Push(int v) { PushLocked(v); }

 private:
  fedfc::Mutex mu_;
  int last_ FEDFC_GUARDED_BY(mu_) = 0;
};

void Use() {
  Queue q;
  q.Push(7);
}
