// Negative case: acquiring a mutex already held in the same scope is a
// self-deadlock; the analysis must reject the second acquisition.

#include "core/sync.h"

int Use(fedfc::Mutex& mu) {
  fedfc::MutexLock outer(mu);
  fedfc::MutexLock inner(mu);  // BUG: mu is already held.
  return 0;
}
