// Negative case: reading a FEDFC_GUARDED_BY member without holding its
// mutex must be rejected by -Wthread-safety (this is the bug class TSan can
// only catch when a schedule happens to exercise the racy pair).

#include "core/sync.h"

class Counter {
 public:
  void Bump() {
    fedfc::MutexLock lock(mu_);
    ++value_;
  }

  // BUG: unguarded read of value_.
  int Get() const { return value_; }

 private:
  mutable fedfc::Mutex mu_;
  int value_ FEDFC_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Bump();
  return c.Get();
}
