// Negative case: releasing a mutex the caller does not hold must be
// rejected — the classic symptom of an unbalanced manual Lock/Unlock pair
// on an early-return path.

#include "core/sync.h"

void Use(fedfc::Mutex& mu) {
  mu.Unlock();  // BUG: nothing acquired mu in this scope.
}
