// Positive case: the full annotated vocabulary used correctly — guarded
// state behind MutexLock scopes, a REQUIRES helper called under the lock,
// and a CondVar wait loop reading guarded state inside the locked scope.
// Must compile clean under -Wthread-safety -Werror=thread-safety.

#include "core/sync.h"

class Mailbox {
 public:
  void Post(int v) {
    {
      fedfc::MutexLock lock(mu_);
      value_ = v;
      has_value_ = true;
      BumpLocked();
    }
    cv_.NotifyOne();
  }

  int Take() {
    fedfc::MutexLock lock(mu_);
    while (!has_value_) cv_.Wait(mu_);
    has_value_ = false;
    return value_;
  }

 private:
  void BumpLocked() FEDFC_REQUIRES(mu_) { ++posts_; }

  fedfc::Mutex mu_;
  fedfc::CondVar cv_;
  int value_ FEDFC_GUARDED_BY(mu_) = 0;
  bool has_value_ FEDFC_GUARDED_BY(mu_) = false;
  int posts_ FEDFC_GUARDED_BY(mu_) = 0;
};

int Use() {
  Mailbox box;
  box.Post(42);
  return box.Take();
}
