// Regression tests for the WorkerServer serve-loop error paths pinned down
// during the [[nodiscard]] Result/Status sweep (docs/STATIC_ANALYSIS.md,
// "Error-handling policy"): every fallible step in the loop — accept, frame
// read, payload decode, dispatch, frame write — must either propagate a
// typed Status or recover deliberately. These tests drive each branch over
// a real loopback socket and assert the loop's recovery behavior, not just
// the happy path.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/worker.h"
#include "worker_harness.h"

namespace fedfc::net {
namespace {

Socket MustConnect(uint16_t port) {
  Result<Socket> conn = Socket::ConnectTcp("127.0.0.1", port, 2000);
  EXPECT_TRUE(conn.ok()) << conn.status();
  return std::move(*conn);
}

/// Sends a valid request frame on `conn` and expects a well-formed kReply.
void RoundTripValidRequest(Socket& conn) {
  Frame request;
  request.type = FrameType::kRequest;
  request.task = "any";
  request.body = fl::Payload().Serialize();
  ASSERT_TRUE(WriteFrame(conn, request, 2000).ok());
  Result<Frame> reply = ReadFrame(conn, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, FrameType::kReply);
}

TEST(WorkerErrorTest, GarbageBytesDropTheConnectionButNotTheLoop) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);
  WorkerHarness worker(&pool, &client);

  {
    // Wire garbage (wrong magic) must not kill the worker or produce a
    // reply — the serve loop drops the connection and returns to accept.
    Socket garbler = MustConnect(worker.port());
    std::vector<uint8_t> garbage(64, 0xAB);
    ASSERT_TRUE(garbler.SendAll(garbage.data(), garbage.size(), 2000).ok());
    // The worker closes its end; our read observes EOF/reset, not a frame.
    Result<Frame> nothing = ReadFrame(garbler, 2000);
    EXPECT_FALSE(nothing.ok());
  }

  // The loop survived: a fresh connection completes a full round trip.
  Socket conn = MustConnect(worker.port());
  RoundTripValidRequest(conn);
}

TEST(WorkerErrorTest, NonRequestFrameGetsTypedErrorOnSameConnection) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);
  WorkerHarness worker(&pool, &client);

  Socket conn = MustConnect(worker.port());
  Frame bogus;
  bogus.type = FrameType::kReply;  // A worker never expects a reply.
  bogus.task = "any";
  ASSERT_TRUE(WriteFrame(conn, bogus, 2000).ok());

  Result<Frame> reply = ReadFrame(conn, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, FrameType::kError);
  Status decoded = ErrorFrameStatus(*reply);
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);

  // A protocol-level error is answered, not fatal: the same connection
  // still serves a valid request afterwards.
  RoundTripValidRequest(conn);
}

TEST(WorkerErrorTest, UndecodablePayloadBodyGetsTypedErrorNotADrop) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);
  WorkerHarness worker(&pool, &client);

  Socket conn = MustConnect(worker.port());
  Frame request;
  request.type = FrameType::kRequest;
  request.task = "any";
  request.body = {0xDE, 0xAD, 0xBE, 0xEF};  // Not a serialized Payload.
  ASSERT_TRUE(WriteFrame(conn, request, 2000).ok());

  // Payload::Deserialize's failure travels back as an error frame instead
  // of being swallowed (the pre-sweep temptation) or dropping the link.
  Result<Frame> reply = ReadFrame(conn, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_FALSE(ErrorFrameStatus(*reply).ok());

  RoundTripValidRequest(conn);
}

TEST(WorkerErrorTest, HandlerErrorTravelsBackWithCodeAndMessage) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);
  WorkerHarness worker(&pool, &client);

  Socket conn = MustConnect(worker.port());
  Frame request;
  request.type = FrameType::kRequest;
  request.task = "fail";
  request.body = fl::Payload().Serialize();
  ASSERT_TRUE(WriteFrame(conn, request, 2000).ok());

  Result<Frame> reply = ReadFrame(conn, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, FrameType::kError);
  Status decoded = ErrorFrameStatus(*reply);
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_NE(decoded.message().find("no handler for 'fail'"),
            std::string::npos);
}

TEST(WorkerErrorTest, MultiplexedWorkerDispatchesOnClientIndex) {
  ThreadPool pool(2);
  EchoClient c0("c0", 1.0, 30);
  EchoClient c1("c1", 2.0, 10);

  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  WorkerServer worker(std::move(*listener),
                      std::vector<fl::Client*>{&c0, &c1}, FastWorkerOptions());
  EXPECT_EQ(worker.num_clients(), 2u);
  auto done = pool.Submit([&worker]() { return worker.Serve(); });

  Socket conn = MustConnect(worker.port());
  for (uint32_t slot : {1u, 0u, 1u}) {
    Frame request;
    request.type = FrameType::kRequest;
    request.client_index = slot;
    request.task = "any";
    request.body = fl::Payload().Serialize();
    ASSERT_TRUE(WriteFrame(conn, request, 2000).ok());
    Result<Frame> reply = ReadFrame(conn, 2000);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->type, FrameType::kReply);
    EXPECT_EQ(reply->client_index, slot);  // Replies echo the slot.
    Result<fl::Payload> payload = fl::Payload::Deserialize(reply->body);
    ASSERT_TRUE(payload.ok()) << payload.status();
    EXPECT_DOUBLE_EQ(*payload->GetDouble("value"), slot == 0 ? 1.0 : 2.0);
  }

  worker.RequestStop();
  EXPECT_TRUE(done.get().ok());
}

TEST(WorkerErrorTest, OutOfRangeClientIndexGetsTypedErrorNotADrop) {
  ThreadPool pool(2);
  EchoClient c0("c0", 1.0, 30);
  EchoClient c1("c1", 2.0, 10);

  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  WorkerServer worker(std::move(*listener),
                      std::vector<fl::Client*>{&c0, &c1}, FastWorkerOptions());
  auto done = pool.Submit([&worker]() { return worker.Serve(); });

  Socket conn = MustConnect(worker.port());
  Frame request;
  request.type = FrameType::kRequest;
  request.client_index = 7;  // Hosting only slots 0 and 1.
  request.task = "any";
  request.body = fl::Payload().Serialize();
  ASSERT_TRUE(WriteFrame(conn, request, 2000).ok());

  Result<Frame> reply = ReadFrame(conn, 2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->client_index, 7u);  // Error frames echo the slot too.
  Status decoded = ErrorFrameStatus(*reply);
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.message().find("out of range"), std::string::npos);

  // A misaddressed frame is answered, not fatal: the same connection still
  // serves a valid request afterwards.
  RoundTripValidRequest(conn);

  worker.RequestStop();
  EXPECT_TRUE(done.get().ok());
}

TEST(WorkerErrorTest, ShutdownFrameEndsServeWithOkStatus) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);

  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  WorkerServer worker(std::move(*listener), &client, FastWorkerOptions());
  auto done = pool.Submit([&worker]() { return worker.Serve(); });

  Socket conn = MustConnect(worker.port());
  Frame shutdown;
  shutdown.type = FrameType::kShutdown;
  ASSERT_TRUE(WriteFrame(conn, shutdown, 2000).ok());

  // Serve's Status is the whole contract of the [[nodiscard]] sweep here:
  // it returns OK on an orderly shutdown, and callers (fedfc_worker's main)
  // must consume it.
  Status served = done.get();
  EXPECT_TRUE(served.ok()) << served;
}

}  // namespace
}  // namespace fedfc::net
