#ifndef FEDFC_TESTS_NET_WORKER_HARNESS_H_
#define FEDFC_TESTS_NET_WORKER_HARNESS_H_

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <utility>

#include "core/thread_pool.h"
#include "fl/client.h"
#include "net/socket.h"
#include "net/worker.h"

namespace fedfc::net {

/// Echoes a scalar back; "fail" tasks return a typed NotFound error.
class EchoClient : public fl::Client {
 public:
  EchoClient(std::string id, double value, size_t n)
      : id_(std::move(id)), value_(value), n_(n) {}

  std::string id() const override { return id_; }
  size_t num_examples() const override { return n_; }

  Result<fl::Payload> Handle(const std::string& task,
                             const fl::Payload& request) override {
    if (task == "fail") return Status::NotFound("no handler for 'fail'");
    fl::Payload reply;
    reply.SetDouble("value", value_);
    if (request.Has("x")) reply.SetDouble("echo", *request.GetDouble("x"));
    return reply;
  }

 private:
  std::string id_;
  double value_;
  size_t n_;
};

inline WorkerOptions FastWorkerOptions() {
  WorkerOptions opt;
  opt.poll_interval_ms = 25;
  opt.io_timeout_ms = 2000;
  return opt;
}

/// One WorkerServer on a pool thread, torn down in the destructor. The pool
/// must have a free thread (size >= 2: a size-1 pool runs Submit inline on
/// the calling thread, which would deadlock the test against Serve).
class WorkerHarness {
 public:
  WorkerHarness(ThreadPool* pool, fl::Client* client) {
    Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    worker_ = std::make_unique<WorkerServer>(std::move(*listener), client,
                                             FastWorkerOptions());
    done_ = pool->Submit([w = worker_.get()]() { return w->Serve(); });
  }

  ~WorkerHarness() {
    worker_->RequestStop();
    EXPECT_TRUE(done_.get().ok());
  }

  [[nodiscard]] uint16_t port() const { return worker_->port(); }

 private:
  std::unique_ptr<WorkerServer> worker_;
  std::future<Status> done_;
};

}  // namespace fedfc::net

#endif  // FEDFC_TESTS_NET_WORKER_HARNESS_H_
