#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fedfc::net {
namespace {

Frame MakeRequest() {
  Frame f;
  f.type = FrameType::kRequest;
  f.task = "meta_features";
  f.body = {0x01, 0x02, 0x03, 0xFF, 0x00, 0x7F};
  return f;
}

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The canonical CRC-32 check vector: crc32("123456789") = 0xCBF43926.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check.data()), check.size()),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  Frame f = MakeRequest();
  std::vector<uint8_t> bytes = EncodeFrame(f);
  EXPECT_EQ(bytes.size(), EncodedFrameSize(f));
  EXPECT_EQ(bytes.size(),
            kFrameHeaderBytes + f.task.size() + f.body.size() +
                kFrameTrailerBytes);
  Result<Frame> back = DecodeFrame(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, f);
}

TEST(FrameTest, ClientIndexRoundTrips) {
  Frame f = MakeRequest();
  f.client_index = 1023;
  Result<Frame> back = DecodeFrame(EncodeFrame(f));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->client_index, 1023u);
  EXPECT_EQ(*back, f);

  // The default (single-client worker) addresses slot 0.
  EXPECT_EQ(Frame{}.client_index, 0u);
}

TEST(FrameTest, EmptyTaskAndBodyRoundTrip) {
  Frame f;
  f.type = FrameType::kShutdown;
  Result<Frame> back = DecodeFrame(EncodeFrame(f));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, f);
}

TEST(FrameTest, ErrorFrameCarriesTypedStatus) {
  Status original = Status::DeadlineExceeded("client too slow");
  Frame f = MakeErrorFrame("fit", original);
  Result<Frame> back = DecodeFrame(EncodeFrame(f));
  ASSERT_TRUE(back.ok()) << back.status();
  Status recovered = ErrorFrameStatus(*back);
  EXPECT_EQ(recovered.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(recovered.message(), "client too slow");
  EXPECT_EQ(back->task, "fit");
}

TEST(FrameTest, ErrorFrameStatusRejectsNonErrorFrames) {
  Frame f = MakeRequest();
  EXPECT_EQ(ErrorFrameStatus(f).code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecodeTest, RejectsShortBuffers) {
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  for (size_t keep = 0; keep < kFrameHeaderBytes + kFrameTrailerBytes; ++keep) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    Result<Frame> r = DecodeFrame(cut);
    ASSERT_FALSE(r.ok()) << "keep " << keep;
    EXPECT_NE(r.status().ToString().find("truncated header"), std::string::npos);
  }
}

TEST(FrameDecodeTest, RejectsTruncationAtEveryLength) {
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  for (size_t keep = kFrameHeaderBytes + kFrameTrailerBytes;
       keep < bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(DecodeFrame(cut).ok()) << "keep " << keep;
  }
}

TEST(FrameDecodeTest, RejectsBadMagicAndVersion) {
  std::vector<uint8_t> bad_magic = EncodeFrame(MakeRequest());
  bad_magic[0] ^= 0xFF;
  Result<Frame> r = DecodeFrame(bad_magic);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bad magic"), std::string::npos);

  std::vector<uint8_t> bad_version = EncodeFrame(MakeRequest());
  bad_version[4] = 99;
  r = DecodeFrame(bad_version);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("protocol version"), std::string::npos);
}

TEST(FrameDecodeTest, RejectsUnknownTypeAndStatusCode) {
  std::vector<uint8_t> bad_type = EncodeFrame(MakeRequest());
  bad_type[6] = 17;
  Result<Frame> r = DecodeFrame(bad_type);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("unknown frame type"), std::string::npos);

  std::vector<uint8_t> bad_code =
      EncodeFrame(MakeErrorFrame("t", Status::Internal("x")));
  bad_code[7] = 200;
  r = DecodeFrame(bad_code);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("unknown status code"),
            std::string::npos);
}

TEST(FrameDecodeTest, RejectsStatusCodeOnNonErrorFrame) {
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  bytes[7] = static_cast<uint8_t>(StatusCode::kInternal);
  Result<Frame> r = DecodeFrame(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("non-error frame"), std::string::npos);
}

TEST(FrameDecodeTest, RejectsLengthsBeyondCapsWithoutAllocating) {
  // task_len = 0xFFFFFFFF: must fail on the cap check, long before any
  // allocation or read sized by the declared length.
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  for (size_t offset : {8u, 12u}) {  // task_len, body_len fields.
    std::vector<uint8_t> huge = bytes;
    huge[offset + 0] = 0xFF;
    huge[offset + 1] = 0xFF;
    huge[offset + 2] = 0xFF;
    huge[offset + 3] = 0xFF;
    Result<Frame> r = DecodeFrame(huge);
    ASSERT_FALSE(r.ok()) << "offset " << offset;
    EXPECT_NE(r.status().ToString().find("exceeds cap"), std::string::npos);
  }
}

TEST(FrameDecodeTest, RejectsDeclaredLengthBeyondBuffer) {
  // A task_len under the cap but larger than the actual buffer must be a
  // typed error, not an out-of-bounds read.
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  bytes[8] = 0xFF;  // task_len: 13 -> 255 (< kMaxTaskBytes).
  Result<Frame> r = DecodeFrame(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("declared lengths exceed buffer"),
            std::string::npos);
}

TEST(FrameDecodeTest, RejectsTrailingBytes) {
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  bytes.push_back(0);
  Result<Frame> r = DecodeFrame(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("trailing bytes"), std::string::npos);
}

TEST(FrameDecodeTest, EveryBitFlipIsRejected) {
  // CRC32 detects all single-bit corruption; header validation may reject
  // some flips first. Either way no flipped frame may decode successfully.
  const std::vector<uint8_t> bytes = EncodeFrame(MakeRequest());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      std::vector<uint8_t> mutated = bytes;
      mutated[i] = static_cast<uint8_t>(mutated[i] ^ (1u << b));
      EXPECT_FALSE(DecodeFrame(mutated).ok()) << "byte " << i << " bit " << b;
    }
  }
}

}  // namespace
}  // namespace fedfc::net
