/// Loopback integration tests: a real fl::Server driving real WorkerServer
/// instances over TCP on 127.0.0.1 — the full multi-process deployment with
/// threads standing in for processes. The headline assertions:
///
///  1. A complete engine run over net::TcpTransport is bit-identical to the
///     same run over fl::InProcessTransport (losses, chosen config, global
///     model bytes). The wire adds framing, never semantics.
///  2. A worker that dies mid-round is absorbed by the RoundPolicy retry
///     machinery: the transport reconnects lazily and the round completes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "automl/engine.h"
#include "automl/fed_client.h"
#include "core/thread_pool.h"
#include "data/generators.h"
#include "fl/server.h"
#include "fl/transport.h"
#include "net/socket.h"
#include "net/tcp_transport.h"
#include "net/worker.h"

namespace fedfc::net {
namespace {

std::vector<ts::Series> MakeSplits(size_t n_clients, size_t per_client,
                                   uint64_t seed) {
  Rng rng(seed);
  data::SignalSpec spec;
  spec.length = n_clients * per_client;
  spec.level = 10.0;
  spec.seasonalities = {{24.0, 2.0, 0.0}};
  spec.noise_std = 0.2;
  spec.ar_coefficient = 0.6;
  ts::Series series = data::GenerateSignal(spec, &rng);
  Result<std::vector<ts::Series>> splits =
      ts::SplitIntoClients(series, static_cast<int>(n_clients));
  return *splits;
}

std::vector<std::shared_ptr<fl::Client>> MakeClients(
    const std::vector<ts::Series>& splits, uint64_t seed) {
  std::vector<std::shared_ptr<fl::Client>> clients;
  for (size_t j = 0; j < splits.size(); ++j) {
    automl::ForecastClient::Options opt;
    opt.seed = seed + j;
    clients.push_back(std::make_shared<automl::ForecastClient>(
        "c" + std::to_string(j), splits[j], opt));
  }
  return clients;
}

automl::EngineOptions FastOptions() {
  automl::EngineOptions opt;
  opt.max_iterations = 4;
  opt.time_budget_seconds = 120.0;  // Iteration-bounded in tests.
  opt.bo.n_candidates = 64;
  opt.seed = 5;
  opt.strategy = automl::SearchStrategy::kRandom;
  opt.use_meta_model = false;
  return opt;
}

WorkerOptions FastWorkerOptions() {
  WorkerOptions opt;
  opt.poll_interval_ms = 25;
  opt.io_timeout_ms = 10000;
  return opt;
}

/// N WorkerServers on pool threads, stopped and joined in the destructor.
class WorkerFleet {
 public:
  WorkerFleet(ThreadPool* pool,
              const std::vector<std::shared_ptr<fl::Client>>& clients) {
    for (const auto& client : clients) {
      Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
      EXPECT_TRUE(listener.ok()) << listener.status();
      workers_.push_back(std::make_unique<WorkerServer>(
          std::move(*listener), client.get(), FastWorkerOptions()));
      futures_.push_back(
          pool->Submit([w = workers_.back().get()]() { return w->Serve(); }));
    }
  }

  ~WorkerFleet() {
    for (auto& worker : workers_) worker->RequestStop();
    for (auto& future : futures_) EXPECT_TRUE(future.get().ok());
  }

  std::vector<Endpoint> endpoints() const {
    std::vector<Endpoint> eps;
    for (const auto& worker : workers_) {
      eps.push_back({"127.0.0.1", worker->port()});
    }
    return eps;
  }

 private:
  std::vector<std::unique_ptr<WorkerServer>> workers_;
  std::vector<std::future<Status>> futures_;
};

TEST(LoopbackTest, EngineOverTcpIsBitIdenticalToInProcess) {
  const size_t n_clients = 3;
  std::vector<ts::Series> splits = MakeSplits(n_clients, 150, 1);

  // Reference: the plain in-process simulation, weighted by the clients'
  // own num_examples() — the same value the wire's size query reports.
  std::vector<std::shared_ptr<fl::Client>> ref_clients = MakeClients(splits, 2);
  std::vector<size_t> sizes;
  for (const auto& c : ref_clients) sizes.push_back(c->num_examples());
  auto inproc_server = std::make_unique<fl::Server>(
      std::make_unique<fl::InProcessTransport>(std::move(ref_clients)), sizes);
  automl::FedForecasterEngine inproc_engine(nullptr, FastOptions());
  Result<automl::EngineReport> inproc = inproc_engine.Run(inproc_server.get());
  ASSERT_TRUE(inproc.ok()) << inproc.status();

  // Same clients, same seeds — but behind TCP workers. Client sizes are
  // fetched over the wire (the __num_examples control task), not assumed.
  std::vector<std::shared_ptr<fl::Client>> clients = MakeClients(splits, 2);
  ThreadPool pool(n_clients + 1);
  WorkerFleet fleet(&pool, clients);
  auto transport = std::make_unique<TcpTransport>(fleet.endpoints());
  Result<std::vector<size_t>> wire_sizes = transport->QueryNumExamples();
  ASSERT_TRUE(wire_sizes.ok()) << wire_sizes.status();
  EXPECT_EQ(*wire_sizes, sizes);

  auto tcp_server =
      std::make_unique<fl::Server>(std::move(transport), *wire_sizes);
  automl::FedForecasterEngine tcp_engine(nullptr, FastOptions());
  Result<automl::EngineReport> tcp = tcp_engine.Run(tcp_server.get());
  ASSERT_TRUE(tcp.ok()) << tcp.status();

  // Bit-identical results: every loss, the chosen configuration, and every
  // byte of the serialized global model.
  ASSERT_EQ(inproc->loss_history.size(), tcp->loss_history.size());
  for (size_t i = 0; i < inproc->loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(inproc->loss_history[i], tcp->loss_history[i])
        << "round " << i;
  }
  EXPECT_DOUBLE_EQ(inproc->best_valid_loss, tcp->best_valid_loss);
  EXPECT_DOUBLE_EQ(inproc->test_loss, tcp->test_loss);
  EXPECT_EQ(inproc->best_config.algorithm, tcp->best_config.algorithm);
  ASSERT_EQ(inproc->global_model_blob.size(), tcp->global_model_blob.size());
  for (size_t i = 0; i < inproc->global_model_blob.size(); ++i) {
    EXPECT_DOUBLE_EQ(inproc->global_model_blob[i], tcp->global_model_blob[i])
        << "blob index " << i;
  }

  // Message accounting: the TCP run sends exactly the engine's messages plus
  // the n_clients size queries. Byte counts differ (frame overhead), but
  // nothing failed or timed out on the loopback path.
  EXPECT_EQ(tcp->transport.messages,
            inproc->transport.messages + n_clients);
  EXPECT_EQ(tcp->transport.failures, 0u);
  EXPECT_EQ(tcp->transport.timeouts, 0u);
}

TEST(LoopbackTest, EngineOverMultiplexedWorkerIsBitIdenticalToInProcess) {
  // The whole federation behind ONE worker process (one listener, one
  // connection): frames address clients by their slot in the header. The
  // engine result must still be bit-identical to the in-process run — the
  // acceptance gate for the multiplexed deployment.
  const size_t n_clients = 3;
  std::vector<ts::Series> splits = MakeSplits(n_clients, 150, 1);

  std::vector<std::shared_ptr<fl::Client>> ref_clients = MakeClients(splits, 2);
  std::vector<size_t> sizes;
  for (const auto& c : ref_clients) sizes.push_back(c->num_examples());
  auto inproc_server = std::make_unique<fl::Server>(
      std::make_unique<fl::InProcessTransport>(std::move(ref_clients)), sizes);
  automl::FedForecasterEngine inproc_engine(nullptr, FastOptions());
  Result<automl::EngineReport> inproc = inproc_engine.Run(inproc_server.get());
  ASSERT_TRUE(inproc.ok()) << inproc.status();

  std::vector<std::shared_ptr<fl::Client>> clients = MakeClients(splits, 2);
  std::vector<fl::Client*> hosted;
  for (const auto& c : clients) hosted.push_back(c.get());
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  WorkerServer worker(std::move(*listener), std::move(hosted),
                      FastWorkerOptions());
  ASSERT_EQ(worker.num_clients(), n_clients);
  ThreadPool pool(2);
  auto done = pool.Submit([&worker]() { return worker.Serve(); });

  auto transport = std::make_unique<TcpTransport>(std::vector<WorkerEndpoint>{
      {"127.0.0.1", worker.port(), n_clients}});
  ASSERT_EQ(transport->num_clients(), n_clients);
  Result<std::vector<size_t>> wire_sizes = transport->QueryNumExamples();
  ASSERT_TRUE(wire_sizes.ok()) << wire_sizes.status();
  EXPECT_EQ(*wire_sizes, sizes);  // Slot routing reaches the right datasets.

  auto tcp_server =
      std::make_unique<fl::Server>(std::move(transport), *wire_sizes);
  automl::FedForecasterEngine tcp_engine(nullptr, FastOptions());
  Result<automl::EngineReport> tcp = tcp_engine.Run(tcp_server.get());

  worker.RequestStop();
  EXPECT_TRUE(done.get().ok());
  ASSERT_TRUE(tcp.ok()) << tcp.status();

  ASSERT_EQ(inproc->loss_history.size(), tcp->loss_history.size());
  for (size_t i = 0; i < inproc->loss_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(inproc->loss_history[i], tcp->loss_history[i])
        << "round " << i;
  }
  EXPECT_DOUBLE_EQ(inproc->best_valid_loss, tcp->best_valid_loss);
  EXPECT_DOUBLE_EQ(inproc->test_loss, tcp->test_loss);
  EXPECT_EQ(inproc->best_config.algorithm, tcp->best_config.algorithm);
  ASSERT_EQ(inproc->global_model_blob.size(), tcp->global_model_blob.size());
  for (size_t i = 0; i < inproc->global_model_blob.size(); ++i) {
    EXPECT_DOUBLE_EQ(inproc->global_model_blob[i], tcp->global_model_blob[i])
        << "blob index " << i;
  }
  EXPECT_EQ(tcp->transport.failures, 0u);
  EXPECT_EQ(tcp->transport.timeouts, 0u);
}

/// Echo client for the fault-injection rounds (an engine run is overkill).
class EchoClient : public fl::Client {
 public:
  EchoClient(std::string id, double value, size_t n)
      : id_(std::move(id)), value_(value), n_(n) {}
  std::string id() const override { return id_; }
  size_t num_examples() const override { return n_; }
  Result<fl::Payload> Handle(const std::string&, const fl::Payload&) override {
    fl::Payload reply;
    reply.SetDouble("value", value_);
    return reply;
  }

 private:
  std::string id_;
  double value_;
  size_t n_;
};

TEST(LoopbackTest, KilledWorkerIsAbsorbedByRetryPolicy) {
  // Client 1's "worker process" dies mid-round: the first connection is
  // accepted and immediately closed (the crash), and only then does a fresh
  // WorkerServer start on the same listening socket (the restart). The
  // transport sees the dead connection as one failed execute; the round
  // policy's retry reconnects and completes the round — no abort.
  ThreadPool pool(3);
  EchoClient c0("c0", 1.0, 30);
  EchoClient c1("c1", 2.0, 10);

  Result<Listener> stable = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(stable.ok()) << stable.status();
  WorkerServer worker0(std::move(*stable), &c0, FastWorkerOptions());
  auto done0 = pool.Submit([&worker0]() { return worker0.Serve(); });

  Result<Listener> crashy = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(crashy.ok()) << crashy.status();
  const uint16_t crashy_port = crashy->port();
  // The worker-1 thread: crash once, then serve. A connection queued in the
  // listen backlog during the "restart window" is picked up by Serve.
  std::unique_ptr<WorkerServer> worker1;
  auto done1 = pool.Submit([&worker1, &crashy, &c1]() {
    Result<Socket> first = crashy->Accept(10000);
    if (first.ok()) first->Close();  // Simulated mid-round death.
    worker1 = std::make_unique<WorkerServer>(std::move(*crashy), &c1,
                                             FastWorkerOptions());
    return worker1->Serve();
  });

  auto transport = std::make_unique<TcpTransport>(std::vector<Endpoint>{
      {"127.0.0.1", worker0.port()}, {"127.0.0.1", crashy_port}});
  TcpTransport* transport_ptr = transport.get();
  fl::Server server(std::move(transport), {30, 10});

  fl::RoundSpec spec("any", fl::Payload());
  spec.policy.max_retries = 2;
  Result<fl::RoundResult> round = server.RunRound(spec);

  // Tear the workers down before asserting, so a failed expectation cannot
  // leave Serve blocking the pool destructor.
  worker0.RequestStop();
  if (worker1 != nullptr) worker1->RequestStop();
  EXPECT_TRUE(done0.get().ok());
  EXPECT_TRUE(done1.get().ok());

  ASSERT_TRUE(round.ok()) << round.status();
  ASSERT_EQ(round->replies.size(), 2u);
  EXPECT_NEAR(round->replies[0].weight, 0.75, 1e-12);
  EXPECT_NEAR(round->replies[1].weight, 0.25, 1e-12);
  ASSERT_EQ(round->outcomes.size(), 2u);
  EXPECT_TRUE(round->outcomes[0].ok);
  EXPECT_TRUE(round->outcomes[1].ok);
  EXPECT_GE(round->outcomes[1].retries, 1u);  // The crash cost a retry.
  // The dropped connection is accounted as transport-level faults, and the
  // round completed regardless.
  fl::TransportStats stats = transport_ptr->stats();
  EXPECT_GE(stats.failures + stats.timeouts, 1u);
  EXPECT_EQ(round->trace.failed_clients, 0u);
}

TEST(LoopbackTest, DeadWorkerToleratedAsPartialRound) {
  // One worker never existed (connection refused): with a permissive
  // min_success_fraction the round succeeds on the survivors and the fault
  // shows up in the trace, not as a round abort.
  ThreadPool pool(2);
  EchoClient c0("c0", 1.0, 30);
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  WorkerServer worker0(std::move(*listener), &c0, FastWorkerOptions());
  auto done0 = pool.Submit([&worker0]() { return worker0.Serve(); });

  Result<Listener> dead = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(dead.ok()) << dead.status();
  const uint16_t dead_port = dead->port();
  dead->Close();

  TcpTransportOptions opt;
  opt.connect_timeout_ms = 500;
  fl::Server server(
      std::make_unique<TcpTransport>(
          std::vector<Endpoint>{{"127.0.0.1", worker0.port()},
                                {"127.0.0.1", dead_port}},
          opt),
      {30, 10});

  fl::RoundSpec spec("any", fl::Payload());
  spec.policy.min_success_fraction = 0.5;
  Result<fl::RoundResult> round = server.RunRound(spec);

  worker0.RequestStop();
  EXPECT_TRUE(done0.get().ok());

  ASSERT_TRUE(round.ok()) << round.status();
  ASSERT_EQ(round->replies.size(), 1u);
  EXPECT_EQ(round->replies[0].client_index, 0u);
  EXPECT_DOUBLE_EQ(round->replies[0].weight, 1.0);  // Renormalized alone.
  EXPECT_EQ(round->trace.ok_clients, 1u);
  EXPECT_EQ(round->trace.failed_clients, 1u);
  EXPECT_EQ(round->trace.transport_failures, 1u);  // The refused connect.
}

}  // namespace
}  // namespace fedfc::net
