#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "fl/client.h"
#include "net/socket.h"
#include "net/worker.h"
#include "worker_harness.h"

namespace fedfc::net {
namespace {

TEST(TcpTransportTest, ExecuteRoundTripsPayload) {
  ThreadPool pool(2);
  EchoClient client("c0", 2.5, 40);
  WorkerHarness worker(&pool, &client);

  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", worker.port()}});
  fl::Payload request;
  request.SetDouble("x", 7.0);
  Result<fl::Payload> reply = transport.Execute(0, "any", request);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_DOUBLE_EQ(*reply->GetDouble("value"), 2.5);
  EXPECT_DOUBLE_EQ(*reply->GetDouble("echo"), 7.0);

  fl::TransportStats stats = transport.stats();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_GT(stats.bytes_to_clients, 0u);
  EXPECT_GT(stats.bytes_to_server, 0u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

TEST(TcpTransportTest, ClientErrorTravelsAsTypedStatus) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);
  WorkerHarness worker(&pool, &client);

  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", worker.port()}});
  Result<fl::Payload> reply = transport.Execute(0, "fail", fl::Payload());
  ASSERT_FALSE(reply.ok());
  // The worker wraps the handler's status in an error frame; the transport
  // reconstructs it code-and-message intact.
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_NE(reply.status().ToString().find("no handler for 'fail'"),
            std::string::npos);
  EXPECT_EQ(transport.stats().failures, 1u);
  EXPECT_EQ(transport.stats().timeouts, 0u);

  // An app-level error does not poison the connection machinery: the next
  // execute on the same client succeeds (reconnecting if needed).
  Result<fl::Payload> ok = transport.Execute(0, "any", fl::Payload());
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST(TcpTransportTest, ConnectionRefusedCountsAsFailure) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  uint16_t dead_port = listener->port();
  listener->Close();

  TcpTransportOptions opt;
  opt.connect_timeout_ms = 500;
  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", dead_port}}, opt);
  Result<fl::Payload> reply = transport.Execute(0, "any", fl::Payload());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kIOError);
  EXPECT_EQ(transport.stats().failures, 1u);
  EXPECT_EQ(transport.stats().timeouts, 0u);
}

TEST(TcpTransportTest, SilentPeerCountsAsTimeout) {
  // A listener that never answers: connect and send succeed (the kernel
  // queues both), then the reply read hits its deadline.
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();

  TcpTransportOptions opt;
  opt.io_timeout_ms = 100;
  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", listener->port()}}, opt);
  Result<fl::Payload> reply = transport.Execute(0, "any", fl::Payload());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(transport.stats().timeouts, 1u);
  EXPECT_EQ(transport.stats().failures, 0u);
}

TEST(TcpTransportTest, OutOfRangeClientIndexRejected) {
  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", 1}});
  EXPECT_EQ(transport.Execute(5, "any", fl::Payload()).status().code(),
            StatusCode::kOutOfRange);
}

TEST(TcpTransportTest, QueryNumExamplesFetchesSizesOverTheWire) {
  ThreadPool pool(3);
  EchoClient c0("c0", 1.0, 30);
  EchoClient c1("c1", 2.0, 10);
  WorkerHarness w0(&pool, &c0);
  WorkerHarness w1(&pool, &c1);

  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", w0.port()},
                                               {"127.0.0.1", w1.port()}});
  Result<std::vector<size_t>> sizes = transport.QueryNumExamples();
  ASSERT_TRUE(sizes.ok()) << sizes.status();
  EXPECT_EQ(*sizes, (std::vector<size_t>{30, 10}));
}

TEST(TcpTransportTest, ShutdownFrameStopsTheWorker) {
  ThreadPool pool(2);
  EchoClient client("c0", 1.0, 10);

  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  WorkerServer worker(std::move(*listener), &client, FastWorkerOptions());
  auto done = pool.Submit([&worker]() { return worker.Serve(); });

  TcpTransport transport(std::vector<Endpoint>{{"127.0.0.1", worker.port()}});
  ASSERT_TRUE(transport.Execute(0, "any", fl::Payload()).ok());
  ASSERT_TRUE(transport.ShutdownWorker(0).ok());
  // Serve returns on its own — no RequestStop needed.
  EXPECT_TRUE(done.get().ok());
}

}  // namespace
}  // namespace fedfc::net
