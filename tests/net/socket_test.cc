#include "net/socket.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/thread_pool.h"
#include "net/frame.h"

namespace fedfc::net {
namespace {

/// Connects a client socket to a fresh ephemeral listener and accepts the
/// server end. Loopback connects complete immediately, so this is safe on
/// one thread.
struct LoopbackPair {
  Socket client;
  Socket server;
};

LoopbackPair MakePair(Listener* listener) {
  Result<Socket> client =
      Socket::ConnectTcp("127.0.0.1", listener->port(), 2000);
  EXPECT_TRUE(client.ok()) << client.status();
  Result<Socket> server = listener->Accept(2000);
  EXPECT_TRUE(server.ok()) << server.status();
  return {std::move(*client), std::move(*server)};
}

TEST(SocketTest, EphemeralListenerReportsRealPort) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  EXPECT_GT(listener->port(), 0u);
}

TEST(SocketTest, SendAllRecvAllRoundTrip) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);

  const std::string message = "hello, federated world";
  ASSERT_TRUE(pair.client
                  .SendAll(reinterpret_cast<const uint8_t*>(message.data()),
                           message.size(), 2000)
                  .ok());
  std::vector<uint8_t> received(message.size());
  ASSERT_TRUE(pair.server.RecvAll(received.data(), received.size(), 2000).ok());
  EXPECT_EQ(std::string(received.begin(), received.end()), message);
}

TEST(SocketTest, ConnectionRefusedIsIOError) {
  // Bind an ephemeral port, then close the listener: the port is now (very
  // probably) unbound, so connecting is refused immediately.
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  uint16_t dead_port = listener->port();
  listener->Close();
  Result<Socket> refused = Socket::ConnectTcp("127.0.0.1", dead_port, 2000);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
}

TEST(SocketTest, NonNumericHostIsInvalidArgument) {
  Result<Socket> r = Socket::ConnectTcp("not-a-host-name", 80, 100);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SocketTest, AcceptTimesOut) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  Result<Socket> r = listener->Accept(50);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketTest, RecvTimesOutWhenPeerIsSilent) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);
  uint8_t byte = 0;
  Status r = pair.server.RecvAll(&byte, 1, 50);
  EXPECT_EQ(r.code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketTest, WaitReadableTimesOutThenSeesData) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);
  EXPECT_EQ(pair.server.WaitReadable(50).code(),
            StatusCode::kDeadlineExceeded);
  uint8_t byte = 42;
  ASSERT_TRUE(pair.client.SendAll(&byte, 1, 2000).ok());
  EXPECT_TRUE(pair.server.WaitReadable(2000).ok());
}

TEST(SocketTest, PeerCloseSurfacesAsIOError) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);
  pair.client.Close();
  uint8_t byte = 0;
  Status r = pair.server.RecvAll(&byte, 1, 2000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), StatusCode::kIOError);
  EXPECT_NE(r.ToString().find("closed by peer"), std::string::npos);
}

TEST(SocketTest, LargeTransferLoopsOverPartialSends) {
  // 4 MiB exceeds any default kernel socket buffer, forcing SendAll/RecvAll
  // through their partial-transfer/EAGAIN paths. Needs a second thread (a
  // single thread would deadlock once the buffers fill).
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);

  std::vector<uint8_t> sent(4u << 20);
  for (size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<uint8_t>(i * 131u + 17u);
  }
  ThreadPool pool(2);  // Size 1 would run the sender inline and deadlock.
  Socket writer = std::move(pair.client);
  auto send_result = pool.Submit([&sent, &writer]() {
    return writer.SendAll(sent.data(), sent.size(), 10000);
  });
  std::vector<uint8_t> received(sent.size());
  Status recv_status =
      pair.server.RecvAll(received.data(), received.size(), 10000);
  ASSERT_TRUE(send_result.get().ok());
  ASSERT_TRUE(recv_status.ok()) << recv_status;
  EXPECT_EQ(received, sent);
}

TEST(SocketTest, FramesTravelOverSockets) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);

  Frame frame;
  frame.type = FrameType::kRequest;
  frame.task = "evaluate";
  frame.body.resize(1000);
  std::iota(frame.body.begin(), frame.body.end(), uint8_t{0});
  ASSERT_TRUE(WriteFrame(pair.client, frame, 2000).ok());
  Result<Frame> back = ReadFrame(pair.server, 2000);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, frame);
}

TEST(SocketTest, ReadFrameRejectsGarbageHeader) {
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);

  // 16 garbage bytes: ReadFrame must reject the header without waiting for
  // (or allocating) the gigabytes its length fields imply.
  std::vector<uint8_t> garbage(kFrameHeaderBytes, 0xEE);
  ASSERT_TRUE(pair.client.SendAll(garbage.data(), garbage.size(), 2000).ok());
  Result<Frame> r = ReadFrame(pair.server, 2000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SocketTest, NodelayIsActuallySetOnBothEnds) {
  // Regression for the setsockopt error handling added during the
  // [[nodiscard]] sweep: TCP_NODELAY used to be applied via bare (void)
  // casts; it is now applied through a logged best-effort helper. Pin that
  // the option still lands on both the connecting and the accepted socket.
  Result<Listener> listener = Listener::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  LoopbackPair pair = MakePair(&*listener);
  for (const Socket* s : {&pair.client, &pair.server}) {
    int flag = 0;
    socklen_t len = sizeof(flag);
    ASSERT_EQ(::getsockopt(s->fd(), IPPROTO_TCP, TCP_NODELAY, &flag, &len), 0);
    EXPECT_NE(flag, 0);
  }
}

}  // namespace
}  // namespace fedfc::net
